"""Command-line interface: regenerate the paper's tables and figures.

Usage::

    repro-ppopp91 all            # every table and figure
    repro-ppopp91 all --jobs 8   # fan simulations out over 8 processes
    repro-ppopp91 table2         # one experiment
    repro-ppopp91 figure1 --quick
    repro-ppopp91 table3 --trips 400 --seed 7
    repro-ppopp91 cache stats    # inspect the simulation artifact cache
    repro-ppopp91 cache clear
    repro-ppopp91 audit              # cross-backend parity, standard programs
    repro-ppopp91 audit --fuzz 50 --seed 0   # seeded differential fuzzing
    repro-ppopp91 native info    # compiled-kernel availability and cache
    repro-ppopp91 native clear   # drop cached kernel builds
    repro-ppopp91 all --backend native   # force one analysis backend
    repro-ppopp91 all --obs          # record spans/counters, write manifest
    repro-ppopp91 obs report         # render the latest run manifest
    repro-ppopp91 obs export         # latest event log -> Chrome trace JSON
    repro-ppopp91 obs calibrate      # measure the obs layer's own overhead
    repro-ppopp91 all --log-level debug   # stderr diagnostics ($REPRO_LOG)
    python -m repro figure5

Simulations are deterministic per (program, plan, machine, seed) tuple,
so ``--jobs`` and the artifact cache change wall-clock only — report text
is byte-identical to a serial, cold run.

Trace artifacts (e.g. the simulation cache) are stored in the chunked
compressed ``.rpt`` v3 format; set ``REPRO_TRACE_FORMAT=v2``/``v3`` to
pin the packed version other ``.rpt`` writes default to (see
``docs/FORMATS.md``).
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace
from typing import Optional, Sequence

from repro.analysis.approximation import AnalysisError
from repro.analysis.eventbased import BACKENDS as ANALYSIS_BACKENDS
from repro.analysis.eventbased import configure_backend
from repro.exec import PerturbationConfig
from repro.experiments import (
    DEFAULT_CONFIG,
    ExperimentConfig,
    run_accuracy,
    run_figure1,
    run_figure4,
    run_figure5,
    run_loop_studies,
    run_mode_study,
    run_scaling,
    run_table1,
    run_table2,
    run_table3,
    run_volume,
)
from repro.experiments.table1 import DOACROSS_LOOPS
from repro.logutil import configure_logging, get_logger
from repro.runtime import ArtifactCache, RunSpec, configure, simulate_many

log = get_logger("cli")

EXPERIMENTS = (
    "figure1",
    "table1",
    "table2",
    "table3",
    "figure4",
    "figure5",
    "modes",
    "accuracy",
    "scaling",
    "volume",
)


def _build_config(args: argparse.Namespace) -> ExperimentConfig:
    config = DEFAULT_CONFIG
    if args.quick:
        config = config.quick()
    if args.trips is not None:
        config = replace(config, trips=args.trips)
    if args.seed is not None:
        config = replace(config, seed=args.seed)
    if args.no_noise:
        config = replace(config, perturb=PerturbationConfig())
    return config


def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-ppopp91",
        description=(
            "Reproduce the tables and figures of Malony, 'Event-Based "
            "Performance Perturbation: A Case Study' (PPoPP 1991) on a "
            "simulated Alliant FX/80."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=EXPERIMENTS + ("all", "cache", "audit", "native", "obs"),
        help=(
            "which table/figure to regenerate, 'cache' to manage the "
            "artifact cache, 'audit' to run the cross-backend "
            "correctness audit, 'native' to manage the compiled "
            "analysis kernel, or 'obs' to inspect self-instrumentation "
            "runs"
        ),
    )
    parser.add_argument(
        "action",
        nargs="?",
        choices=("stats", "clear", "info", "report", "export", "calibrate"),
        default=None,
        help=(
            "management action: with 'cache' stats|clear (default stats); "
            "with 'native' info|clear (default info); with 'obs' "
            "report|export|calibrate (default report)"
        ),
    )
    parser.add_argument(
        "--quick", action="store_true", help="reduced loop lengths (fast)"
    )
    parser.add_argument(
        "--trips", type=int, default=None, help="override loop trip counts"
    )
    parser.add_argument("--seed", type=int, default=None, help="machine noise seed")
    parser.add_argument(
        "--no-noise",
        action="store_true",
        help="disable ancillary perturbation (jitter/dilation); approximations become exact",
    )
    parser.add_argument(
        "--width", type=int, default=72, help="chart width in characters"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="simulation worker processes (default: $REPRO_JOBS or 1 = serial)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="skip the on-disk simulation artifact cache",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="artifact cache location (default: $REPRO_CACHE_DIR or ~/.cache/repro-ppopp91)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="run under cProfile and print the top-25 cumulative entries",
    )
    parser.add_argument(
        "--fuzz",
        type=int,
        default=None,
        metavar="N",
        help=(
            "(audit) differential-audit N fuzzed programs seeded "
            "SEED..SEED+N-1 instead of the standard program set"
        ),
    )
    parser.add_argument(
        "--no-minimize",
        action="store_true",
        help="(audit) skip delta-minimization of divergence witnesses",
    )
    parser.add_argument(
        "--backend",
        choices=ANALYSIS_BACKENDS,
        default=None,
        help=(
            "event-based analysis backend for this run (default: auto — "
            "native, then columnar, then object)"
        ),
    )
    parser.add_argument(
        "--obs",
        action="store_true",
        help=(
            "record self-instrumentation spans/counters during the run "
            "and write a run manifest, event log, and Chrome trace "
            "(equivalent to REPRO_OBS=1)"
        ),
    )
    parser.add_argument(
        "--obs-dir",
        default=None,
        metavar="DIR",
        help=(
            "where obs exports land (default: $REPRO_OBS_DIR or "
            "<artifact cache>/obs)"
        ),
    )
    parser.add_argument(
        "--log-level",
        default=None,
        metavar="LEVEL",
        help=(
            "stderr diagnostics level: debug/info/warning/error "
            "(default: $REPRO_LOG or info)"
        ),
    )
    return parser


def all_specs(config: ExperimentConfig) -> list[RunSpec]:
    """Every simulation tuple the full report needs, for one-shot fan-out.

    Duplicates across experiments (e.g. the accuracy study re-measures the
    loop-study tuples) are fine: the runner deduplicates by spec.
    """
    from repro.experiments.accuracy import accuracy_specs
    from repro.experiments.common import loop_study_specs, sequential_study_specs
    from repro.experiments.modes import mode_study_specs
    from repro.experiments.scaling import scaling_specs
    from repro.experiments.volume import volume_specs
    from repro.livermore.classify import figure1_kernels

    specs: list[RunSpec] = []
    for k in figure1_kernels():
        specs.extend(sequential_study_specs(k, config))
    for k in DOACROSS_LOOPS:
        specs.extend(loop_study_specs(k, config))
    specs.extend(mode_study_specs(config))
    specs.extend(accuracy_specs(config))
    specs.extend(scaling_specs(17, config))
    specs.extend(scaling_specs(3, config))
    specs.extend(volume_specs(20, config))
    return specs


def run(experiment: str, config: ExperimentConfig, width: int = 72) -> str:
    """Run one experiment (or 'all') and return its report text."""
    sections: list[str] = []
    if experiment == "all":
        # One batch for the whole report: cache hits resolve immediately
        # and every remaining simulation fans out in a single wave.
        simulate_many(all_specs(config))
    # Loop studies are the expensive part; share them across experiments.
    studies = None
    if experiment in ("table1", "table2", "table3", "figure4", "figure5", "all"):
        studies = run_loop_studies(DOACROSS_LOOPS, config)
    if experiment in ("figure1", "all"):
        sections.append(run_figure1(config).render())
    if experiment in ("table1", "all"):
        sections.append(run_table1(config, studies=studies).render())
    if experiment in ("table2", "all"):
        sections.append(run_table2(config, studies=studies).render())
    if experiment in ("table3", "all"):
        sections.append(run_table3(config, study=studies[17]).render())
    if experiment in ("figure4", "all"):
        sections.append(run_figure4(config, study=studies[17]).render(width=width))
    if experiment in ("figure5", "all"):
        sections.append(run_figure5(config, study=studies[17]).render(width=width))
    if experiment in ("modes", "all"):
        sections.append(run_mode_study(config).render())
    if experiment in ("accuracy", "all"):
        sections.append(run_accuracy(config).render())
    if experiment in ("scaling", "all"):
        sections.append(run_scaling(17, config).render())
        sections.append(run_scaling(3, config).render())
    if experiment in ("volume", "all"):
        sections.append(run_volume(20, config).render())
    return "\n\n" + "\n\n\n".join(sections) + "\n"


def _run_audit_command(args: argparse.Namespace) -> int:
    from repro.audit import fuzz_audit, standard_audit

    minimize = not args.no_minimize
    if args.fuzz is not None:
        if args.fuzz < 1:
            make_parser().error("--fuzz requires N >= 1")
        report = fuzz_audit(
            args.fuzz,
            base_seed=args.seed if args.seed is not None else 0,
            minimize=minimize,
            progress=log.info,
        )
    else:
        report = standard_audit(trips=args.trips, minimize=minimize)
    print(report.render())
    return 0 if report.ok else 1


def _run_cache_command(args: argparse.Namespace) -> int:
    cache = ArtifactCache(args.cache_dir)
    action = args.action or "stats"
    if action == "info":
        make_parser().error("'cache' supports actions: stats, clear")
    if action == "clear":
        removed = cache.clear()
        print(f"removed {removed} cached artifacts from {cache.root}")
    else:
        print(cache.stats().describe())
    return 0


def _run_native_command(args: argparse.Namespace) -> int:
    from repro import native

    action = args.action or "info"
    if action not in ("info", "clear"):
        make_parser().error("'native' supports actions: info, clear")
    if action == "clear":
        root = native.native_cache_dir()
        removed = native.clear_native_cache()
        print(f"removed {removed} cached kernel builds from {root}")
        return 0
    print(native.describe_status())
    return 0


def _run_obs_command(args: argparse.Namespace) -> int:
    from repro import obs

    action = args.action or "report"
    if action not in ("report", "export", "calibrate"):
        make_parser().error("'obs' supports actions: report, export, calibrate")
    directory = args.obs_dir  # None -> $REPRO_OBS_DIR or <cache>/obs
    if action == "calibrate":
        print(obs.calibrate().describe())
        return 0
    if action == "export":
        jsonl = obs.latest_jsonl(directory)
        if jsonl is None:
            print(
                "error: no obs event log found; run an experiment with "
                "--obs (or REPRO_OBS=1) first",
                file=sys.stderr,
            )
            return 1
        doc = obs.chrome_trace_from_jsonl(jsonl)
        out = jsonl.with_name(jsonl.name.replace(".events.jsonl", ".trace.json"))
        import json as _json

        out.write_text(_json.dumps(doc) + "\n")
        print(out)
        return 0
    found = obs.latest_manifest(directory)
    if found is None:
        print(
            "error: no obs run manifest found; run an experiment with "
            "--obs (or REPRO_OBS=1) first",
            file=sys.stderr,
        )
        return 1
    path, manifest = found
    print(obs.render_manifest(manifest))
    log.info("manifest: %s", path)
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    try:
        return _main(argv)
    except AnalysisError as exc:
        # e.g. --backend native on a host where the kernel can't run
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:  # e.g. piped into `head`
        return 0


def _main(argv: Optional[Sequence[str]] = None) -> int:
    args = make_parser().parse_args(argv)
    configure_logging(args.log_level, default="info")
    if args.backend is not None:
        configure_backend(args.backend)
    if args.experiment == "cache":
        return _run_cache_command(args)
    if args.experiment == "native":
        return _run_native_command(args)
    if args.experiment == "obs":
        return _run_obs_command(args)
    if args.experiment == "audit":
        if args.action is not None:
            make_parser().error(
                f"'{args.action}' only applies to the 'cache', 'native', "
                "and 'obs' commands"
            )
        return _run_audit_command(args)
    if args.fuzz is not None:
        make_parser().error("--fuzz only applies to the 'audit' command")
    if args.action is not None:
        make_parser().error(
            f"'{args.action}' only applies to the 'cache', 'native', and "
            "'obs' commands"
        )
    configure(
        jobs=args.jobs,
        cache=None if args.no_cache else ArtifactCache(args.cache_dir),
    )
    config = _build_config(args)
    from repro import obs

    if args.obs and not obs.enabled():
        obs.enable()
    if args.profile:
        import cProfile
        import pstats

        profiler = cProfile.Profile()
        report = profiler.runcall(run, args.experiment, config, width=args.width)
        print(report)
        stats = pstats.Stats(profiler, stream=sys.stdout)
        stats.sort_stats("cumulative").print_stats(25)
    else:
        print(run(args.experiment, config, width=args.width))
    if obs.enabled():
        paths = obs.write_run(args.obs_dir)
        log.info("obs manifest: %s", paths.manifest)
        log.info("obs trace:    %s", paths.trace)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
