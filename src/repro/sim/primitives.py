"""Synchronization primitives built on the simulation engine.

These are general-purpose building blocks; the Alliant FX/80 concurrency
hardware in :mod:`repro.machine` is modelled on top of them.  All primitives
wake waiters in strict FIFO order, preserving engine determinism.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Generator, Optional

from repro.sim.engine import Engine, Signal, SimulationError, Timeout, _Effect


class Semaphore:
    """Counting semaphore with FIFO wakeup.

    ``yield sem.acquire()`` suspends until a unit is available;
    ``sem.release()`` returns a unit, waking the longest-waiting process.
    """

    def __init__(self, engine: Engine, initial: int = 1, name: str = ""):
        if initial < 0:
            raise ValueError("semaphore count must be >= 0")
        self.engine = engine
        self.name = name
        self._count = initial
        self._waiters: deque[Signal] = deque()

    @property
    def count(self) -> int:
        return self._count

    @property
    def queued(self) -> int:
        return len(self._waiters)

    def acquire(self) -> _Effect:
        if self._count > 0:
            self._count -= 1
            return Timeout(0)
        sig = Signal(f"{self.name}.acquire")
        self._waiters.append(sig)
        return sig

    def try_acquire(self) -> bool:
        """Non-blocking acquire; returns True on success."""
        if self._count > 0:
            self._count -= 1
            return True
        return False

    def release(self) -> None:
        if self._waiters:
            sig = self._waiters.popleft()
            sig.trigger(self.engine)
        else:
            self._count += 1


class Mutex(Semaphore):
    """Binary semaphore; models a critical-section lock.

    Tracks the cumulative time processes spend blocked, which the machine
    model uses for contention accounting.
    """

    def __init__(self, engine: Engine, name: str = ""):
        super().__init__(engine, initial=1, name=name)
        self.total_blocked_time = 0
        self.acquisitions = 0

    def locked(self) -> bool:
        return self._count == 0

    def hold(self, duration: int) -> Generator[_Effect, Any, None]:
        """Process helper: acquire, hold for ``duration`` cycles, release."""
        t0 = self.engine.now
        yield self.acquire()
        self.total_blocked_time += self.engine.now - t0
        self.acquisitions += 1
        try:
            yield Timeout(duration)
        finally:
            self.release()


class SimQueue:
    """Unbounded FIFO queue of items with blocking ``get``."""

    def __init__(self, engine: Engine, name: str = ""):
        self.engine = engine
        self.name = name
        self._items: deque[Any] = deque()
        self._getters: deque[Signal] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        if self._getters:
            sig = self._getters.popleft()
            sig.trigger(self.engine, item)
        else:
            self._items.append(item)

    def get(self) -> _Effect:
        """Effect resolving to the next item (FIFO across waiters)."""
        if self._items:
            return Timeout(0, self._items.popleft())
        sig = Signal(f"{self.name}.get")
        self._getters.append(sig)
        return sig


class Store:
    """A write-once cell observable by many readers.

    Used for broadcast rendezvous where a value becomes available exactly
    once (e.g. a loop's shared trip-count).
    """

    def __init__(self, engine: Engine, name: str = ""):
        self.engine = engine
        self._signal = Signal(name)

    @property
    def is_set(self) -> bool:
        return self._signal.triggered

    def set(self, value: Any) -> None:
        self._signal.trigger(self.engine, value)

    def wait(self) -> _Effect:
        return self._signal

    def peek(self) -> Any:
        return self._signal.value


class Barrier:
    """Reusable N-party barrier with generation counting.

    ``yield barrier.arrive()`` suspends until ``parties`` processes have
    arrived; all are then released simultaneously (same cycle).  The barrier
    resets for the next generation.  Arrival order per generation is
    recorded for analysis/debugging.
    """

    def __init__(self, engine: Engine, parties: int, name: str = ""):
        if parties < 1:
            raise ValueError("barrier needs at least one party")
        self.engine = engine
        self.parties = parties
        self.name = name
        self.generation = 0
        self._arrived = 0
        self._signal = Signal(f"{name}.gen0")
        self.arrival_times: list[list[int]] = [[]]

    def arrive(self) -> _Effect:
        self.arrival_times[self.generation].append(self.engine.now)
        self._arrived += 1
        if self._arrived < self.parties:
            return self._signal
        # Last arrival: release everyone and reset.
        sig = self._signal
        self.generation += 1
        self._arrived = 0
        self._signal = Signal(f"{self.name}.gen{self.generation}")
        self.arrival_times.append([])
        sig.trigger(self.engine, self.generation - 1)
        return Timeout(0, self.generation - 1)


def at(engine: Engine, time: int, fn: Callable[[], Optional[Any]]) -> None:
    """Run ``fn`` (no arguments) at absolute simulation time ``time``."""
    if time < engine.now:
        raise SimulationError(f"cannot schedule at past time {time} (now {engine.now})")
    engine.schedule(time - engine.now, lambda _value: fn())
