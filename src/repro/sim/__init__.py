"""Deterministic discrete-event simulation kernel.

This subpackage is the foundation substrate for the reproduction: a small,
fully deterministic discrete-event simulator with generator-based processes,
in the style of SimPy but with integer (cycle-granular) time and strictly
reproducible event ordering.

Determinism guarantees:

* Simulation time is an integer number of machine cycles — no floating-point
  scheduling drift.
* Ties in the event queue are broken by a monotonically increasing sequence
  number, so two runs of the same program produce byte-identical traces.
* All randomness flows through :class:`repro.sim.rng.SplitMix64` streams that
  are seeded explicitly.
"""

from repro.sim.engine import (
    Engine,
    Process,
    ProcessCrashed,
    SimulationDeadlock,
    SimulationError,
    SimulationTimeout,
    Timeout,
    Signal,
    AllOf,
    Interrupt,
)
from repro.sim.primitives import Semaphore, Mutex, SimQueue, Barrier, Store
from repro.sim.rng import SplitMix64

__all__ = [
    "Engine",
    "Process",
    "ProcessCrashed",
    "SimulationDeadlock",
    "SimulationError",
    "SimulationTimeout",
    "Timeout",
    "Signal",
    "AllOf",
    "Interrupt",
    "Semaphore",
    "Mutex",
    "SimQueue",
    "Barrier",
    "Store",
    "SplitMix64",
]
