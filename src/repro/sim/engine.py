"""Discrete-event simulation engine with generator-based processes.

The engine keeps a priority queue of pending *occurrences* ordered by
``(time, sequence)``.  Simulated activities are Python generator functions
("processes") that ``yield`` effect objects:

* :class:`Timeout` — suspend the process for a fixed number of cycles.
* :class:`Signal` — suspend until another process triggers the signal; the
  value passed to :meth:`Signal.trigger` is returned from the ``yield``.
* :class:`AllOf` — suspend until every child effect has completed.
* another :class:`Process` — suspend until that process terminates; its
  return value is returned from the ``yield``.

Time is an integer cycle count.  The engine is strictly deterministic: ties
at equal timestamps are broken by insertion order.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional

from repro.obs import core as obs


class SimulationError(RuntimeError):
    """Base class for all simulation-kernel errors."""


class SimulationDeadlock(SimulationError):
    """Raised by :meth:`Engine.run` when live processes remain but no
    occurrence is scheduled (every runnable process is blocked forever).

    The message dumps every blocked process and the effect it waits on;
    the same information is available structurally as ``blocked``, a tuple
    of ``(process, effect)`` pairs.
    """

    def __init__(self, message: str, blocked: tuple = ()):
        super().__init__(message)
        self.blocked = tuple(blocked)


class SimulationTimeout(SimulationError):
    """Raised by :meth:`Engine.run` when a ``max_cycles`` or ``max_events``
    budget is exhausted before the simulation completes (livelock guard).

    Attributes mirror :class:`SimulationDeadlock`: ``blocked`` holds
    ``(process, effect)`` pairs for every process still live at timeout.
    """

    def __init__(self, message: str, blocked: tuple = ()):
        super().__init__(message)
        self.blocked = tuple(blocked)


class ProcessCrashed(SimulationError):
    """Raised when a process generator raised an unhandled exception.

    The original exception is available as ``__cause__``.
    """

    def __init__(self, process: "Process", original: BaseException):
        super().__init__(f"process {process.name!r} crashed: {original!r}")
        self.process = process
        self.original = original


class Interrupt(Exception):
    """Thrown *into* a process generator by :meth:`Process.interrupt`."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class _Effect:
    """Base class for things a process may yield.

    Subclasses implement :meth:`_subscribe`, which arranges for
    ``callback(value)`` to run when the effect completes.
    """

    def _subscribe(self, engine: "Engine", callback: Callable[[Any], None]) -> None:
        raise NotImplementedError


class Timeout(_Effect):
    """Suspend the yielding process for ``delay`` cycles (``delay >= 0``)."""

    __slots__ = ("delay", "value")

    def __init__(self, delay: int, value: Any = None):
        if delay < 0:
            raise ValueError(f"Timeout delay must be >= 0, got {delay}")
        self.delay = int(delay)
        self.value = value

    def _subscribe(self, engine: "Engine", callback: Callable[[Any], None]) -> None:
        engine.schedule(self.delay, callback, self.value)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Timeout({self.delay})"


class Signal(_Effect):
    """A one-shot broadcast event.

    Processes yield the signal to wait on it.  :meth:`trigger` wakes every
    waiter (in subscription order) with the trigger value.  Waiting on an
    already-triggered signal resumes immediately with the stored value; this
    makes signals safe for "has X already happened?" rendezvous such as the
    advance/await registers of the concurrency bus.
    """

    __slots__ = ("name", "_triggered", "_value", "_waiters")

    def __init__(self, name: str = ""):
        self.name = name
        self._triggered = False
        self._value: Any = None
        self._waiters: list[Callable[[Any], None]] = []

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError(f"signal {self.name!r} has not been triggered")
        return self._value

    def trigger(self, engine: "Engine", value: Any = None) -> None:
        if self._triggered:
            raise SimulationError(f"signal {self.name!r} triggered twice")
        self._triggered = True
        self._value = value
        waiters, self._waiters = self._waiters, []
        for cb in waiters:
            engine.schedule(0, cb, value)

    def _subscribe(self, engine: "Engine", callback: Callable[[Any], None]) -> None:
        if self._triggered:
            engine.schedule(0, callback, self._value)
        else:
            self._waiters.append(callback)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "triggered" if self._triggered else "pending"
        return f"Signal({self.name!r}, {state})"


class AllOf(_Effect):
    """Completes when every child effect completes.

    The resume value is a list of child values in child order.
    """

    __slots__ = ("children",)

    def __init__(self, children: Iterable[_Effect]):
        self.children = list(children)

    def _subscribe(self, engine: "Engine", callback: Callable[[Any], None]) -> None:
        n = len(self.children)
        if n == 0:
            engine.schedule(0, callback, [])
            return
        results: list[Any] = [None] * n
        remaining = [n]

        def make_child_cb(index: int) -> Callable[[Any], None]:
            def child_cb(value: Any) -> None:
                results[index] = value
                remaining[0] -= 1
                if remaining[0] == 0:
                    callback(results)

            return child_cb

        for i, child in enumerate(self.children):
            child._subscribe(engine, make_child_cb(i))


class Process(_Effect):
    """A running simulation process wrapping a generator.

    Created via :meth:`Engine.process`.  A process is itself an effect:
    yielding it from another process waits for termination and receives the
    generator's return value.
    """

    __slots__ = (
        "engine", "name", "_gen", "_done", "_result", "_waiters", "_crashed",
        "_waiting_on",
    )

    def __init__(self, engine: "Engine", gen: Generator[_Effect, Any, Any], name: str):
        self.engine = engine
        self.name = name
        self._gen = gen
        self._done = False
        self._crashed: Optional[BaseException] = None
        self._result: Any = None
        self._waiters: list[Callable[[Any], None]] = []
        self._waiting_on: Optional[_Effect] = None
        engine._live_processes += 1
        engine._processes.add(self)
        engine.schedule(0, self._step, None)

    # -- state ---------------------------------------------------------
    @property
    def done(self) -> bool:
        return self._done

    @property
    def result(self) -> Any:
        if not self._done:
            raise SimulationError(f"process {self.name!r} has not finished")
        if self._crashed is not None:
            raise ProcessCrashed(self, self._crashed) from self._crashed
        return self._result

    # -- driving -------------------------------------------------------
    def _step(self, send_value: Any) -> None:
        if self._done:
            return
        self._waiting_on = None
        try:
            if isinstance(send_value, BaseException):
                effect = self._gen.throw(send_value)
            else:
                effect = self._gen.send(send_value)
        except StopIteration as stop:
            self._finish(stop.value, None)
            return
        except Interrupt:
            # An interrupt escaped the generator: treat as clean termination.
            self._finish(None, None)
            return
        except BaseException as exc:  # noqa: BLE001 - deliberate trap
            self._finish(None, exc)
            return
        if not isinstance(effect, _Effect):
            self._finish(
                None,
                SimulationError(
                    f"process {self.name!r} yielded {effect!r}, expected an effect"
                ),
            )
            return
        self._waiting_on = effect
        effect._subscribe(self.engine, self._step)

    def _finish(self, result: Any, crashed: Optional[BaseException]) -> None:
        self._done = True
        self._result = result
        self._crashed = crashed
        self._waiting_on = None
        self.engine._live_processes -= 1
        self.engine._processes.discard(self)
        if crashed is not None:
            self.engine._record_crash(ProcessCrashed(self, crashed))
        waiters, self._waiters = self._waiters, []
        for cb in waiters:
            self.engine.schedule(0, cb, result)

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self._done:
            return
        self.engine.schedule(0, self._step, Interrupt(cause))

    # -- effect protocol ------------------------------------------------
    def _subscribe(self, engine: "Engine", callback: Callable[[Any], None]) -> None:
        if self._done:
            engine.schedule(0, callback, self._result)
        else:
            self._waiters.append(callback)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "done" if self._done else "running"
        return f"Process({self.name!r}, {state})"


def _describe(effect: Optional[_Effect]) -> str:
    """Human description of what a process is waiting on (for dumps)."""
    if effect is None:
        return "the scheduler (runnable)"
    if isinstance(effect, Signal):
        name = effect.name or "<anonymous>"
        return f"signal {name!r}"
    if isinstance(effect, Process):
        return f"process {effect.name!r}"
    if isinstance(effect, Timeout):
        return f"Timeout({effect.delay})"
    if isinstance(effect, AllOf):
        return f"AllOf({len(effect.children)} children)"
    return repr(effect)


class Engine:
    """The deterministic discrete-event simulation core.

    >>> eng = Engine()
    >>> def hello():
    ...     yield Timeout(5)
    ...     return eng.now
    >>> p = eng.process(hello())
    >>> eng.run()
    5
    >>> p.result
    5
    """

    def __init__(self) -> None:
        self.now: int = 0
        self._queue: list[tuple[int, int, Callable[[Any], None], Any]] = []
        self._seq = 0
        self._live_processes = 0
        self._processes: set[Process] = set()
        self._crashes: list[ProcessCrashed] = []

    # -- scheduling ------------------------------------------------------
    def schedule(self, delay: int, callback: Callable[[Any], None], value: Any = None) -> None:
        """Arrange ``callback(value)`` to run ``delay`` cycles from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        self._seq += 1
        heapq.heappush(self._queue, (self.now + int(delay), self._seq, callback, value))

    def process(self, gen: Generator[_Effect, Any, Any], name: str = "") -> Process:
        """Register a generator as a new process, started at the current time."""
        if not name:
            name = getattr(gen, "__name__", "proc")
        return Process(self, gen, name)

    def signal(self, name: str = "") -> Signal:
        """Create a fresh one-shot :class:`Signal`."""
        return Signal(name)

    def _record_crash(self, crash: ProcessCrashed) -> None:
        self._crashes.append(crash)

    # -- execution ---------------------------------------------------------
    def step(self) -> None:
        """Execute the single next occurrence."""
        if not self._queue:
            raise SimulationError("no scheduled occurrences")
        time, _seq, callback, value = heapq.heappop(self._queue)
        if time < self.now:  # pragma: no cover - internal invariant
            raise SimulationError("event queue time went backwards")
        self.now = time
        callback(value)

    # -- observability -----------------------------------------------------
    def blocked_processes(self) -> list[tuple["Process", Optional[_Effect]]]:
        """Every live process with the effect it is currently waiting on.

        Sorted by name for deterministic dumps.  The effect is None for a
        process that is scheduled to run (not actually blocked).
        """
        return [
            (p, p._waiting_on)
            for p in sorted(self._processes, key=lambda p: (p.name, id(p)))
        ]

    def _format_blocked(self) -> str:
        lines = []
        for proc, effect in self.blocked_processes():
            lines.append(f"  process {proc.name!r} waiting on {_describe(effect)}")
        return "\n".join(lines) if lines else "  (no live processes)"

    def run(
        self,
        until: Optional[int] = None,
        *,
        max_cycles: Optional[int] = None,
        max_events: Optional[int] = None,
    ) -> int:
        """Run until the queue drains (or simulated time reaches ``until``).

        Returns the final simulation time.  Raises
        :class:`SimulationDeadlock` if live processes remain with nothing
        scheduled, and :class:`ProcessCrashed` if any process raised.

        Watchdog budgets guard against runaway workloads: ``max_cycles``
        bounds simulated time and ``max_events`` bounds the number of
        executed occurrences.  Exhausting either raises
        :class:`SimulationTimeout` whose message names every still-live
        process and the effect it waits on — unlike ``until``, which
        pauses cleanly, a budget overrun is an error (livelock guard).
        """
        executed = 0
        # One flag read up front: per-occurrence obs cost is a single
        # boolean test plus a mask check (heartbeat gauges for watchdog
        # triage; granular spans here would perturb what we measure).
        obs_on = obs.enabled()
        while self._queue:
            if until is not None and self._queue[0][0] > until:
                self.now = until
                break
            if max_cycles is not None and self._queue[0][0] > max_cycles:
                if obs_on:
                    obs.count("sim.watchdog.max_cycles")
                raise SimulationTimeout(
                    f"simulation exceeded max_cycles={max_cycles} (next "
                    f"occurrence at t={self._queue[0][0]}); live processes:\n"
                    + self._format_blocked(),
                    tuple(self.blocked_processes()),
                )
            if max_events is not None and executed >= max_events:
                if obs_on:
                    obs.count("sim.watchdog.max_events")
                raise SimulationTimeout(
                    f"simulation exceeded max_events={max_events} at "
                    f"t={self.now}; live processes:\n" + self._format_blocked(),
                    tuple(self.blocked_processes()),
                )
            self.step()
            executed += 1
            if obs_on and (executed & 0x3FFF) == 0:  # every 16384 occurrences
                obs.gauge("sim.engine.occurrences", executed)
                obs.gauge("sim.engine.now", self.now)
            if self._crashes:
                raise self._crashes[0]
        if obs_on:
            obs.gauge("sim.engine.occurrences", executed)
            obs.gauge("sim.engine.now", self.now)
        if until is None and self._live_processes > 0:
            obs.count("sim.engine.deadlock")
            raise SimulationDeadlock(
                f"{self._live_processes} process(es) blocked with an empty "
                "event queue:\n" + self._format_blocked(),
                tuple(self.blocked_processes()),
            )
        return self.now

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Engine(now={self.now}, pending={len(self._queue)})"
