"""Deterministic pseudo-random number streams for the simulator.

The simulator must be bit-reproducible across platforms and Python versions,
so randomness is provided by an explicit SplitMix64 implementation rather
than :mod:`random` or NumPy's global state.  Streams can be forked with
:meth:`SplitMix64.fork` so independent machine components (memory system,
per-CE jitter) draw from decorrelated sequences derived from one seed.
"""

from __future__ import annotations

_MASK64 = (1 << 64) - 1
_GOLDEN = 0x9E3779B97F4A7C15


class SplitMix64:
    """SplitMix64 generator (Steele, Lea & Flood 2014).

    Passes BigCrush when used as a 64-bit generator; tiny state makes
    forked, reproducible sub-streams cheap.
    """

    __slots__ = ("_state",)

    def __init__(self, seed: int):
        self._state = seed & _MASK64

    @property
    def state(self) -> int:
        """Current internal state (for checkpoint/restore)."""
        return self._state

    def next_u64(self) -> int:
        """Next raw 64-bit output."""
        self._state = (self._state + _GOLDEN) & _MASK64
        z = self._state
        z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
        z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
        return z ^ (z >> 31)

    def uniform(self) -> float:
        """Uniform float in [0, 1) with 53 bits of precision."""
        return (self.next_u64() >> 11) * (1.0 / (1 << 53))

    def randint(self, lo: int, hi: int) -> int:
        """Uniform integer in the inclusive range [lo, hi].

        Uses rejection sampling to avoid modulo bias.
        """
        if hi < lo:
            raise ValueError(f"empty range [{lo}, {hi}]")
        span = hi - lo + 1
        # Largest multiple of span that fits in 64 bits.
        limit = (_MASK64 + 1) - ((_MASK64 + 1) % span)
        while True:
            v = self.next_u64()
            if v < limit:
                return lo + (v % span)

    def jitter(self, base: int, fraction: float) -> int:
        """Integer ``base`` perturbed by up to ±``fraction`` of itself.

        Used for small deterministic timing noise (memory contention); the
        result is always >= 0 and equals ``base`` when ``fraction == 0``.
        """
        if fraction < 0:
            raise ValueError("jitter fraction must be >= 0")
        if fraction == 0 or base == 0:
            return base
        span = max(1, int(base * fraction))
        return max(0, base + self.randint(-span, span))

    def fork(self, label: int) -> "SplitMix64":
        """Derive an independent stream keyed by ``label``.

        Forking with distinct labels from the same parent yields
        decorrelated streams; forking twice with the same label yields the
        same stream (useful for reproducing a component's draw sequence).
        """
        mixer = SplitMix64((self._state ^ (label * _GOLDEN)) & _MASK64)
        return SplitMix64(mixer.next_u64())

    def choice(self, seq):
        """Uniformly pick one element of a non-empty sequence."""
        if not seq:
            raise ValueError("cannot choose from an empty sequence")
        return seq[self.randint(0, len(seq) - 1)]

    def shuffle(self, items: list) -> None:
        """In-place Fisher-Yates shuffle."""
        for i in range(len(items) - 1, 0, -1):
            j = self.randint(0, i)
            items[i], items[j] = items[j], items[i]
