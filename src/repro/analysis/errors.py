"""Scoring approximations against ground truth.

The paper reports two ratios per experiment (Tables 1/2):
``Measured/Actual`` (how badly instrumentation perturbed the run) and
``Approximated/Actual`` (how well the analysis recovered it).  These
utilities compute them plus per-event error statistics.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.analysis.approximation import Approximation
from repro.trace.events import EventKind
from repro.trace.trace import Trace


def percent_error(approx: float, actual: float) -> float:
    """Signed percent error of ``approx`` relative to ``actual``."""
    if actual == 0:
        raise ZeroDivisionError("actual value is zero")
    return 100.0 * (approx - actual) / actual


@dataclass(frozen=True)
class ExecutionRatios:
    """The paper's headline comparison for one loop/experiment."""

    name: str
    actual_time: int
    measured_time: int
    approximated_time: int
    method: str = ""

    @property
    def measured_over_actual(self) -> float:
        return self.measured_time / self.actual_time

    @property
    def approximated_over_actual(self) -> float:
        return self.approximated_time / self.actual_time

    @property
    def approximation_error_pct(self) -> float:
        return percent_error(self.approximated_time, self.actual_time)

    @property
    def accuracy_improvement(self) -> float:
        """Factor by which the approximation shrinks the measurement error.

        The paper quotes "a factor of over 8 in improved accuracy" for
        loop 17; this is |measured error| / |approximation error|.
        """
        meas_err = abs(self.measured_time - self.actual_time)
        appr_err = abs(self.approximated_time - self.actual_time)
        if appr_err == 0:
            return math.inf
        return meas_err / appr_err

    def row(self) -> str:
        return (
            f"{self.name:<12} {self.measured_over_actual:>9.2f} "
            f"{self.approximated_over_actual:>14.2f} "
            f"({self.approximation_error_pct:+.1f}% error)"
        )


def compare_ratios(
    name: str,
    actual_time: int,
    measured_time: int,
    approximation: Approximation,
) -> ExecutionRatios:
    """Bundle the three execution times into the paper's ratio row."""
    return ExecutionRatios(
        name=name,
        actual_time=actual_time,
        measured_time=measured_time,
        approximated_time=approximation.total_time,
        method=approximation.method,
    )


@dataclass(frozen=True)
class EventErrorStats:
    """Per-event timing error of an approximation vs. the actual trace."""

    n_matched: int
    mean_abs_error: float
    max_abs_error: int
    mean_signed_error: float
    rms_error: float


def per_event_errors(
    approx: Approximation,
    actual: Trace,
    kinds: Optional[set[EventKind]] = None,
) -> EventErrorStats:
    """Match approximated events to actual events and score timing error.

    Matching key: (thread, eid, iteration, kind, sync identity) with a
    per-key occurrence counter — robust to re-timing.  Events present in
    only one trace (e.g. probes of structural markers not in the other
    plan's vocabulary) are skipped; the fraction matched is reported via
    ``n_matched``.
    """

    def keyed(trace_events):
        counters: dict[tuple, int] = {}
        out = {}
        for e in trace_events:
            base = (e.thread, e.eid, e.iteration, e.kind, e.sync_var, e.sync_index)
            n = counters.get(base, 0)
            counters[base] = n + 1
            out[base + (n,)] = e
        return out

    wanted = kinds
    a_events = [e for e in approx.trace if wanted is None or e.kind in wanted]
    b_events = [e for e in actual if wanted is None or e.kind in wanted]
    amap = keyed(a_events)
    bmap = keyed(b_events)
    diffs = [
        amap[k].time - bmap[k].time for k in amap.keys() & bmap.keys()
    ]
    if not diffs:
        return EventErrorStats(0, 0.0, 0, 0.0, 0.0)
    abs_diffs = [abs(d) for d in diffs]
    return EventErrorStats(
        n_matched=len(diffs),
        mean_abs_error=sum(abs_diffs) / len(diffs),
        max_abs_error=max(abs_diffs),
        mean_signed_error=sum(diffs) / len(diffs),
        rms_error=math.sqrt(sum(d * d for d in diffs) / len(diffs)),
    )
