"""Event-based perturbation analysis (§4).

The constructive algorithm of §4.2.3: resolve an approximated time ``t_a``
for each measured event, thread by thread, where every event is execution
dependent on its thread predecessor, and synchronization events additionally
depend on their counterparts:

* ``advance``: ``t_a = t_a(u) + [t_m(advance) - t_m(u)] - a``
  (``u`` = thread predecessor, ``a`` = advance probe overhead);
* ``awaitB``: ``t_a = t_a(v) + [t_m(awaitB) - t_m(v)] - β``;
* ``awaitE``: if ``t_a(advance) <= t_a(awaitB)`` then no waiting occurs in
  the approximation and ``t_a = t_a(awaitB) + s_nowait``; otherwise waiting
  occurs and ``t_a = t_a(advance) + s_wait``;
* barrier exits: ``t_a = max(t_a of all arrivals) + barrier_release``
  (DOACROSS loop ends are handled as barriers, §5.1);
* loop begins: anchored to the initiating thread's pre-fork event, so
  lateness inherited from an instrumented sequential section is removed;
* lock acquisitions (general mutual exclusion, beyond the paper's
  testbed but within its framework [18]): the measured acquisition order
  per lock is preserved — conservatively, the analysis cannot know that
  a different serialization would have been legal — and
  ``t_a(lockAcq) = max(t_a(lockReq) + lock_nowait,
  t_a(previous holder's lockRel) + lock_handoff)``.

Because instrumentation can *reorder* advance and await operations relative
to the actual execution, waiting present in the measurement may disappear in
the approximation and vice versa (Figure 2) — this is exactly what the
awaitE rule reconstructs.  The result is a *conservative approximation*: it
preserves the measured partial order of dependent events and is therefore a
feasible execution (§4.1); whether it is the *likely* execution depends on
scheduling effects conservative analysis cannot see (see
:mod:`repro.analysis.reschedule` for the liberal extension).
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.approximation import (
    AnalysisError,
    Approximation,
    build_approx_trace,
    check_policy,
)
from repro.instrument.costs import AnalysisConstants
from repro.obs import core as obs
from repro.resilience.repair import (
    RepairReport,
    quarantine_threads,
    repair_trace,
)
from repro.resilience.validate import Diagnostic, validate_trace
from repro.trace import columnar as _columnar
from repro.trace.events import EventKind, TraceEvent
from repro.trace.trace import Trace

#: Analysis backends accepted by :func:`event_based_approximation`,
#: fastest first; ``"auto"`` picks the first one available here.
BACKENDS = ("auto", "native", "columnar", "object")


def pick_backend() -> str:
    """The backend ``"auto"`` resolves to right now: native when the
    compiled kernel can be built/loaded, else columnar when numpy is
    importable, else the object worklist."""
    if _columnar.HAVE_NUMPY:
        from repro import native

        if native.native_available():
            return "native"
        # Compiler-less host or REPRO_NATIVE=0: the interpreted
        # columnar path carries the load.
        obs.count("analysis.backend.native_fallback")
        return "columnar"
    return "object"


#: Backend used when the caller does not pass one (see configure_backend).
_DEFAULT_BACKEND = "auto"


def configure_backend(backend: str) -> str:
    """Set the process-wide default analysis backend; returns the previous.

    This is what the CLI's ``--backend`` flag calls: experiment code never
    mentions a backend, so one configuration point redirects every
    event-based analysis in the run.
    """
    global _DEFAULT_BACKEND
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown analysis backend {backend!r}; expected one of {BACKENDS}"
        )
    previous = _DEFAULT_BACKEND
    _DEFAULT_BACKEND = backend
    return previous


class ResolutionError(AnalysisError):
    """Resolution failed on specific events (carried for quarantining).

    ``events`` are the trace events implicated in the failure; the
    non-strict degradation policies quarantine their threads and retry.
    """

    def __init__(self, message: str, events: tuple[TraceEvent, ...] = ()):
        super().__init__(message)
        self.events = tuple(events)


class _Resolver:
    """Worklist resolution of approximated event times."""

    def __init__(self, measured: Trace, constants: AnalysisConstants):
        self.measured = measured
        self.constants = constants
        self.costs = constants.costs
        self.times: dict[int, int] = {}
        self.views = {t: v.events for t, v in measured.by_thread().items()}
        self.pos = {t: 0 for t in self.views}
        self._index_sync()

    # -------------------------------------------------------------- indexes
    def _index_sync(self) -> None:
        self.advances: dict[tuple[str, int], TraceEvent] = {}
        self.await_begin: dict[tuple[str, int], TraceEvent] = {}
        self.barrier_arrivals: dict[tuple[str, int], list[TraceEvent]] = {}
        self.loop_anchor: dict[str, Optional[TraceEvent]] = {}
        prev_on_thread: dict[int, Optional[TraceEvent]] = {}
        pred_of: dict[int, Optional[TraceEvent]] = {}
        for e in self.measured.events:
            pred_of[e.seq] = prev_on_thread.get(e.thread)
            prev_on_thread[e.thread] = e
            if e.kind is EventKind.ADVANCE:
                key = e.sync_key
                if key in self.advances:
                    raise ResolutionError(f"duplicate advance for {key}", (e,))
                self.advances[key] = e
            elif e.kind is EventKind.AWAIT_B:
                self.await_begin[e.sync_key] = e
            elif e.kind is EventKind.BARRIER_ARRIVE:
                key = (e.sync_var or "barrier", e.sync_index or 0)
                self.barrier_arrivals.setdefault(key, []).append(e)
            elif e.kind is EventKind.LOOP_BEGIN:
                # The initiator's last pre-fork event anchors every
                # participant's loop entry.  Among the predecessors of the
                # loop's LOOP_BEGIN events it is the *latest* one: workers
                # were idle (their predecessors are stale barrier exits of
                # the previous loop) while the initiator executed right up
                # to the fork.
                prev = pred_of[e.seq]
                current = self.loop_anchor.get(e.label)
                if e.label not in self.loop_anchor:
                    self.loop_anchor[e.label] = prev
                elif prev is not None and (
                    current is None
                    or (prev.time, prev.seq) > (current.time, current.seq)
                ):
                    self.loop_anchor[e.label] = prev
        self.pred_of = pred_of
        # Lock structure: per-use triples and the measured per-lock
        # acquisition order (which the conservative analysis preserves).
        self.lock_uses = self.measured.lock_uses()
        self.lock_prev_rel: dict[int, Optional[TraceEvent]] = {}
        for _lock, keys in self.measured.lock_acquisition_order().items():
            prev_rel: Optional[TraceEvent] = None
            for key in keys:
                use = self.lock_uses[key]
                self.lock_prev_rel[use["acq"].seq] = prev_rel
                prev_rel = use["rel"]
        # Semaphores: the k-th grant (measured order) consumes the unit of
        # the (k - capacity)-th signal (measured order); the measured grant
        # order itself is preserved (conservative total order, §4.1).
        self.sem_uses = self.measured.sem_uses()
        self.sem_enabler: dict[int, Optional[TraceEvent]] = {}
        self.sem_prev_acq: dict[int, Optional[TraceEvent]] = {}
        if self.sem_uses:
            capacities = self.measured.meta.get("semaphores")
            if not capacities:
                raise AnalysisError(
                    "trace has semaphore events but no declared capacities "
                    "in its metadata"
                )
            signal_order = self.measured.sem_signal_order()
            for sem, grants in self.measured.sem_grant_order().items():
                cap = int(capacities[sem])
                signals = signal_order[sem]
                prev_acq: Optional[TraceEvent] = None
                for k, key in enumerate(grants):
                    acq = self.sem_uses[key]["acq"]
                    if k >= cap:
                        self.sem_enabler[acq.seq] = self.sem_uses[
                            signals[k - cap]
                        ]["sig"]
                    else:
                        self.sem_enabler[acq.seq] = None
                    self.sem_prev_acq[acq.seq] = prev_acq
                    prev_acq = acq

    # ---------------------------------------------------------- resolution
    def _resolved(self, e: Optional[TraceEvent]) -> bool:
        return e is None or e.seq in self.times

    def _chain(self, e: TraceEvent, basis: Optional[TraceEvent]) -> int:
        """Default rule: preserve the measured interval minus e's overhead."""
        overhead = self.costs.overhead_for(e.kind)
        if basis is None:
            return max(0, e.time - overhead)
        return self.times[basis.seq] + (e.time - basis.time) - overhead

    def _try_resolve(self, e: TraceEvent) -> bool:
        """Resolve t_a(e) if its dependencies are ready; True on success."""
        pred = self.pred_of[e.seq]
        if not self._resolved(pred):
            return False

        if e.kind is EventKind.AWAIT_E:
            ta = self._resolve_await_end(e, pred)
            if ta is None:
                return False
        elif e.kind is EventKind.LOCK_ACQ:
            ta = self._resolve_lock_acquire(e)
            if ta is None:
                return False
        elif e.kind is EventKind.SEM_ACQ:
            ta = self._resolve_sem_acquire(e)
            if ta is None:
                return False
        elif e.kind is EventKind.BARRIER_EXIT:
            ta = self._resolve_barrier_exit(e)
            if ta is None:
                return False
        elif e.kind is EventKind.LOOP_BEGIN:
            anchor = self.loop_anchor.get(e.label)
            if not self._resolved(anchor):
                return False
            # Chain from the initiator's pre-fork event only.  Chaining
            # from the participant's own predecessor (its previous loop's
            # barrier exit) would re-import the initiator's instrumented
            # inter-loop section through the idle gap; the monotonic clamp
            # below still guarantees per-thread order.
            ta = self._chain(e, anchor)
        else:
            ta = self._chain(e, pred)

        if pred is not None:
            ta = max(ta, self.times[pred.seq])  # thread order is causal
        self.times[e.seq] = max(0, ta)
        return True

    def _resolve_await_end(
        self, e: TraceEvent, pred: Optional[TraceEvent]
    ) -> Optional[int]:
        key = e.sync_key
        begin = self.await_begin.get(key)
        if begin is None:
            raise ResolutionError(f"awaitE without awaitB for {key}", (e,))
        if begin.seq not in self.times:
            return None
        t_begin = self.times[begin.seq]
        advance = self.advances.get(key)
        if advance is None:
            if key[1] >= 0:
                raise ResolutionError(
                    f"awaitE {key} has no matching advance", (e,)
                )
            # DOACROSS prologue await: satisfied immediately by convention.
            return t_begin + self.constants.s_nowait
        if advance.seq not in self.times:
            return None
        t_advance = self.times[advance.seq]
        if t_advance <= t_begin:
            return t_begin + self.constants.s_nowait
        return t_advance + self.constants.s_wait

    def _resolve_lock_acquire(self, e: TraceEvent) -> Optional[int]:
        use = self.lock_uses.get(e.sync_key)
        if use is None:  # pragma: no cover - lock_uses covers all triples
            raise AnalysisError(f"lock acquire without use record: {e}")
        req = use["req"]
        if req.seq not in self.times:
            return None
        prev_rel = self.lock_prev_rel.get(e.seq)
        uncontended = self.times[req.seq] + self.constants.lock_nowait
        if prev_rel is None:
            return uncontended
        if prev_rel.seq not in self.times:
            return None
        handoff = self.times[prev_rel.seq] + self.constants.lock_handoff
        return max(uncontended, handoff)

    def _resolve_sem_acquire(self, e: TraceEvent) -> Optional[int]:
        use = self.sem_uses.get(e.sync_key)
        if use is None:  # pragma: no cover - sem_uses covers all triples
            raise AnalysisError(f"semaphore grant without use record: {e}")
        req = use["req"]
        if req.seq not in self.times:
            return None
        candidates = [self.times[req.seq] + self.constants.lock_nowait]
        enabler = self.sem_enabler.get(e.seq)
        if enabler is not None:
            if enabler.seq not in self.times:
                return None
            candidates.append(self.times[enabler.seq] + self.constants.lock_handoff)
        prev_acq = self.sem_prev_acq.get(e.seq)
        if prev_acq is not None:
            if prev_acq.seq not in self.times:
                return None
            # Preserve the measured grant order (conservative total order).
            candidates.append(self.times[prev_acq.seq])
        return max(candidates)

    def _resolve_barrier_exit(self, e: TraceEvent) -> Optional[int]:
        key = (e.sync_var or "barrier", e.sync_index or 0)
        arrivals = self.barrier_arrivals.get(key)
        if not arrivals:
            raise ResolutionError(f"barrier exit {key} without arrivals", (e,))
        if any(a.seq not in self.times for a in arrivals):
            return None
        return max(self.times[a.seq] for a in arrivals) + self.constants.barrier_release

    def run(self) -> dict[int, int]:
        remaining = len(self.measured)
        while remaining > 0:
            progress = 0
            for thread, events in self.views.items():
                i = self.pos[thread]
                while i < len(events) and self._try_resolve(events[i]):
                    i += 1
                    progress += 1
                self.pos[thread] = i
            if progress == 0:
                stuck = [
                    events[self.pos[t]]
                    for t, events in self.views.items()
                    if self.pos[t] < len(events)
                ]
                raise ResolutionError(
                    "event resolution deadlocked (malformed trace?); "
                    "unresolvable events:\n  "
                    + "\n  ".join(str(e) for e in stuck[:8]),
                    tuple(stuck),
                )
            remaining -= progress
        return self.times


def event_based_approximation(
    measured: Trace,
    constants: AnalysisConstants,
    policy: str = "strict",
    *,
    backend: Optional[str] = None,
) -> Approximation:
    """Apply event-based perturbation analysis to a measured trace.

    The trace must carry synchronization identity (the FULL instrumentation
    plan): paired ``advance``/``awaitB``/``awaitE`` events and loop/barrier
    markers.  Statement-only traces degrade to time-based behaviour for the
    unsynchronized portions, which defeats the purpose — use
    :func:`repro.analysis.timebased.time_based_approximation` for those.

    ``policy`` controls how imperfect traces are handled:

    * ``"strict"`` (default) — any structural damage raises;
    * ``"repair"`` — the trace is validated and mended best-effort first
      (:func:`repro.resilience.repair.repair_trace`); threads the resolver
      still cannot make progress on are quarantined and the analysis
      retried, so one corrupt thread costs that thread's results, not the
      whole analysis;
    * ``"skip"`` — like ``"repair"`` but damage is dropped rather than
      mended (no synthesized events, whole-thread quarantine on local
      corruption).

    Under a non-strict policy the returned approximation carries the
    validator's ``diagnostics`` and the ``repair_report`` of every change.

    ``backend``: ``"native"`` resolves through the JIT-built C kernel
    (:mod:`repro.analysis.eventbased_native`; raises
    :class:`~repro.analysis.approximation.AnalysisError` when no compiler
    or cached build is available — see :mod:`repro.native`);
    ``"columnar"`` resolves over ``measured.columns`` — vectorized
    per-thread prefix sums with a scalar worklist visiting only
    synchronization events (:mod:`repro.analysis.eventbased_columnar`);
    ``"object"`` runs the per-event reference worklist; ``"auto"``
    (default) picks the fastest available: native, then columnar, then
    object.  All backends produce identical results — and identical
    failures, so the degradation policies quarantine the same threads
    (property-tested).  Omitting ``backend`` uses the process-wide
    default (``"auto"`` unless :func:`configure_backend` changed it).
    """
    check_policy(policy)
    if backend is None:
        backend = _DEFAULT_BACKEND
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown analysis backend {backend!r}; expected one of {BACKENDS}"
        )
    requested = backend
    if backend == "auto":
        backend = pick_backend()
    if obs.enabled():
        obs.count(f"analysis.backend.requested.{requested}")
        obs.count(f"analysis.backend.picked.{backend}")
        if policy != "strict":
            obs.count(f"analysis.policy.{policy}")
    if backend == "native":
        from repro import native
        from repro.analysis.eventbased_native import resolve_native

        try:  # fail fast, before any validation/repair work
            native.get_resolve_kernel()
        except native.NativeUnavailable as exc:
            raise AnalysisError(
                f"native backend requested but unavailable: {exc}"
            ) from exc

        def _solve(trace: Trace) -> dict[int, int]:
            return resolve_native(trace, constants)

    elif backend == "columnar":
        from repro.analysis.eventbased_columnar import resolve_columnar

        def _solve(trace: Trace) -> dict[int, int]:
            return resolve_columnar(trace, constants)

    else:

        def _solve(trace: Trace) -> dict[int, int]:
            return _Resolver(trace, constants).run()

    diagnostics: list[Diagnostic] = []
    report: Optional[RepairReport] = None
    if policy != "strict":
        with obs.span("analysis.eventbased.repair", policy=policy):
            diagnostics = validate_trace(measured)
            result = repair_trace(measured, mode=policy)
            measured, report = result.trace, result.report
    if not len(measured):
        raise AnalysisError("cannot analyze an empty trace")
    if not measured.meta.get("instrumented", True):
        raise AnalysisError(
            "trace is not a measured (instrumented) trace; nothing to remove"
        )
    if policy == "strict":
        with obs.span(
            "analysis.eventbased.resolve", backend=backend, n_events=len(measured)
        ):
            times = _solve(measured)
    else:
        # Bounded retry: each failed resolution names the events it could
        # not resolve; quarantining their threads removes at least one
        # thread per round, so this terminates.
        for _ in range(len(measured.threads) + 1):
            try:
                with obs.span(
                    "analysis.eventbased.resolve",
                    backend=backend,
                    n_events=len(measured),
                ):
                    times = _solve(measured)
                break
            except ResolutionError as exc:
                bad_threads = {e.thread for e in exc.events}
                if not bad_threads:
                    raise
                obs.count("analysis.quarantine.rounds")
                obs.count("analysis.quarantine.threads", len(bad_threads))
                result = quarantine_threads(measured, bad_threads, report)
                measured = result.trace
                if not len(measured):
                    raise AnalysisError(
                        "no analyzable events remain after quarantining "
                        f"thread(s) {sorted(bad_threads)}"
                    ) from exc
        else:  # pragma: no cover - defensive; loop always breaks or raises
            raise AnalysisError("event resolution failed to converge")
    total = max(times.values())
    return Approximation(
        trace=build_approx_trace(measured, times, "event-based"),
        method="event-based",
        total_time=total,
        times=times,
        source_meta=dict(measured.meta),
        diagnostics=diagnostics,
        repair_report=report,
    )
