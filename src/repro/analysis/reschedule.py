"""Liberal approximation: re-simulating loop self-scheduling (§4.1/§4.2.3).

Conservative event-based analysis keeps the *measured* iteration-to-thread
assignment, but "the concurrent work constrained by the advance and await
operations might be scheduled differently in the actual execution than what
is observed from the measured events — a condition that conservative
analysis cannot detect or resolve."  With external knowledge that the loop
was dynamically self-scheduled, the analysis can re-simulate the scheduling
decision using approximated (de-instrumented) durations, producing a
*liberal* approximation closer to the likely execution.

The algorithm:

1. From a conservative event-based approximation, extract per-iteration
   phase durations: pre-synchronization work (including iteration
   dispatch), critical-section work (awaitE → advance), and
   post-synchronization work.
2. Re-run self-scheduling greedily: the earliest-free thread takes the
   next iteration; awaits are re-evaluated against the re-simulated
   advance times using the platform's ``s_nowait``/``s_wait`` constants.
3. Re-time each iteration's events at its new position (internal gaps
   preserved) and rebuild the trace.

Supports the canonical DOACROSS form (at most one dependence per loop) and
DOALL loops; anything richer raises :class:`AnalysisError`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.approximation import (
    AnalysisError,
    Approximation,
)
from repro.instrument.costs import AnalysisConstants
from repro.trace.events import EventKind, TraceEvent
from repro.trace.trace import Trace


@dataclass
class _IterationProfile:
    """One iteration's events and phase durations in the conservative approx."""

    iteration: int
    events: list[TraceEvent]
    await_b: Optional[TraceEvent] = None
    await_e: Optional[TraceEvent] = None
    advance: Optional[TraceEvent] = None
    pre_duration: int = 0  # dispatch + pre-sync work, up to awaitB (or whole body)
    cs_duration: int = 0  # awaitE -> advance
    post_duration: int = 0  # advance -> last event

    @property
    def distance(self) -> Optional[int]:
        if self.await_e is None or self.await_e.sync_index is None:
            return None
        return self.iteration - self.await_e.sync_index


@dataclass
class _LoopShape:
    """Per-loop structure extracted from the conservative approximation."""

    label: str
    begin_events: list[TraceEvent] = field(default_factory=list)
    arrive_events: list[TraceEvent] = field(default_factory=list)
    exit_events: list[TraceEvent] = field(default_factory=list)
    iterations: dict[int, _IterationProfile] = field(default_factory=dict)
    sync_vars: set[str] = field(default_factory=set)


def _extract_loops(trace: Trace) -> tuple[dict[str, _LoopShape], list[TraceEvent]]:
    """Split the trace into parallel-loop shapes and 'other' events.

    Iteration events are attributed to the loop whose begin/arrive window
    encloses them on their thread.
    """
    loops: dict[str, _LoopShape] = {}
    others: list[TraceEvent] = []
    current_loop: dict[int, Optional[str]] = {}
    for e in trace.events:
        if e.kind is EventKind.LOOP_BEGIN:
            shape = loops.setdefault(e.label, _LoopShape(e.label))
            shape.begin_events.append(e)
            current_loop[e.thread] = e.label
            continue
        if e.kind is EventKind.BARRIER_ARRIVE:
            label = (e.sync_var or "").removesuffix(".barrier")
            if label in loops:
                loops[label].arrive_events.append(e)
                current_loop[e.thread] = None
                continue
        if e.kind is EventKind.BARRIER_EXIT:
            label = (e.sync_var or "").removesuffix(".barrier")
            if label in loops:
                loops[label].exit_events.append(e)
                continue
        label = current_loop.get(e.thread)
        if label is not None and e.iteration is not None:
            shape = loops[label]
            prof = shape.iterations.setdefault(
                e.iteration, _IterationProfile(e.iteration, [])
            )
            prof.events.append(e)
            if e.kind is EventKind.AWAIT_B:
                prof.await_b = e
                shape.sync_vars.add(e.sync_var or "")
            elif e.kind is EventKind.AWAIT_E:
                prof.await_e = e
            elif e.kind is EventKind.ADVANCE:
                prof.advance = e
                shape.sync_vars.add(e.sync_var or "")
            continue
        others.append(e)
    return loops, others


def _profile_durations(shape: _LoopShape, constants: AnalysisConstants) -> None:
    """Fill per-iteration phase durations from approximated event times.

    Iterations dispatched consecutively on a thread: the gap from the
    previous iteration's last event (or the thread's LOOP_BEGIN) to this
    iteration's awaitB (or last event, for DOALL) is the pre-phase.
    """
    begin_by_thread = {e.thread: e for e in shape.begin_events}
    last_on_thread: dict[int, int] = {
        t: e.time for t, e in begin_by_thread.items()
    }
    for it in sorted(shape.iterations):
        prof = shape.iterations[it]
        thread = prof.events[0].thread
        start_basis = last_on_thread.get(thread)
        if start_basis is None:
            raise AnalysisError(
                f"loop {shape.label!r}: iteration {it} on thread {thread} "
                "has no LOOP_BEGIN marker (liberal analysis needs loop events)"
            )
        last_time = prof.events[-1].time
        if prof.await_b is not None:
            if prof.await_e is None or prof.advance is None:
                raise AnalysisError(
                    f"loop {shape.label!r}: iteration {it} has awaitB but "
                    "incomplete sync events"
                )
            prof.pre_duration = max(0, prof.await_b.time - start_basis)
            prof.cs_duration = max(0, prof.advance.time - prof.await_e.time)
            prof.post_duration = max(0, last_time - prof.advance.time)
        else:
            prof.pre_duration = max(0, last_time - start_basis)
        last_on_thread[thread] = last_time


def _reschedule_loop(
    shape: _LoopShape, n_threads: int, constants: AnalysisConstants
) -> tuple[dict[int, tuple[int, int]], int]:
    """Greedy self-scheduling re-simulation.

    Returns (iteration -> (thread, awaitB-or-end anchor time), barrier
    release time).  Threads become free at their last iteration's end; the
    next iteration always goes to the earliest-free thread (ties to the
    lowest id, matching bus arbitration order).
    """
    if len(shape.sync_vars) > 1:
        raise AnalysisError(
            f"loop {shape.label!r} uses {len(shape.sync_vars)} sync variables; "
            "liberal rescheduling supports at most one"
        )
    begin_by_thread = {e.thread: e.time for e in shape.begin_events}
    threads = sorted(begin_by_thread)
    if len(threads) > n_threads:
        raise AnalysisError(
            f"loop {shape.label!r}: more participating threads than n_threads"
        )
    free_at = {t: begin_by_thread[t] for t in threads}
    advance_at: dict[int, int] = {}
    placement: dict[int, tuple[int, int]] = {}
    for it in sorted(shape.iterations):
        prof = shape.iterations[it]
        thread = min(threads, key=lambda t: (free_at[t], t))
        ready = free_at[thread] + prof.pre_duration
        if prof.await_b is not None:
            dep = prof.await_e.sync_index  # index awaited
            dep_adv = advance_at.get(dep) if dep is not None and dep >= 0 else None
            if dep_adv is None or dep_adv <= ready:
                cs_start = ready + constants.s_nowait
            else:
                cs_start = dep_adv + constants.s_wait
            adv_time = cs_start + prof.cs_duration
            advance_at[it] = adv_time
            end = adv_time + prof.post_duration
            placement[it] = (thread, ready)
        else:
            end = ready
            placement[it] = (thread, ready)
        free_at[thread] = end
    release = max(free_at.values()) + constants.barrier_release
    return placement, release


def _retime_iteration(
    prof: _IterationProfile,
    thread: int,
    anchor_time: int,
    constants: AnalysisConstants,
) -> list[TraceEvent]:
    """Re-time one iteration's events at its rescheduled position.

    ``anchor_time`` is the rescheduled awaitB time (sync iterations) or
    the rescheduled iteration end (DOALL).  Internal gaps are preserved
    except the await window, which is re-derived from the rescheduled
    advance dependency (already folded into the anchor by the scheduler).
    """
    out: list[TraceEvent] = []
    if prof.await_b is not None:
        shift_pre = anchor_time - prof.await_b.time
        # awaitE/cs/post anchored by re-deriving the await outcome is done
        # by the scheduler; here we shift phases rigidly.
        for e in prof.events:
            if e.time <= prof.await_b.time:
                t = e.time + shift_pre
            else:
                t = e.time + shift_pre  # cs/post keep relative offsets
            out.append(
                TraceEvent(
                    time=max(0, t),
                    thread=thread,
                    kind=e.kind,
                    eid=e.eid,
                    seq=e.seq,
                    iteration=e.iteration,
                    sync_var=e.sync_var,
                    sync_index=e.sync_index,
                    label=e.label,
                    overhead=0,
                )
            )
        return out
    shift = anchor_time - prof.events[-1].time
    for e in prof.events:
        out.append(
            TraceEvent(
                time=max(0, e.time + shift),
                thread=thread,
                kind=e.kind,
                eid=e.eid,
                seq=e.seq,
                iteration=e.iteration,
                sync_var=e.sync_var,
                sync_index=e.sync_index,
                label=e.label,
                overhead=0,
            )
        )
    return out


def liberal_approximation(
    conservative: Approximation,
    constants: AnalysisConstants,
    n_threads: Optional[int] = None,
) -> Approximation:
    """Upgrade a conservative event-based approximation by re-simulating
    dynamic self-scheduling of its parallel loops.

    Parameters
    ----------
    conservative:
        Output of
        :func:`repro.analysis.eventbased.event_based_approximation` on a
        FULL-plan trace (loop markers required).
    constants:
        Platform constants (same object the conservative analysis used).
    n_threads:
        Thread count of the machine; defaults to the trace metadata.

    Limitations: events outside parallel loops keep their conservative
    times (the rescheduled barrier release replaces the exit timestamps,
    but the sequential epilogue is not re-anchored — for the paper's
    workloads the release shift is at most a few cycles); loops with more
    than one sync variable, locks, or semaphores are rejected.
    """
    trace = conservative.trace
    if n_threads is None:
        n_threads = int(trace.meta.get("n_threads", len(trace.threads)))
    if trace.lock_uses() or trace.sem_uses():
        raise AnalysisError(
            "liberal rescheduling does not support lock- or semaphore-based "
            "loops; use the conservative approximation"
        )
    loops, others = _extract_loops(trace)
    if not loops:
        # Nothing to reschedule: the conservative approximation stands.
        return Approximation(
            trace=trace.relabelled(method="liberal"),
            method="liberal",
            total_time=conservative.total_time,
            times=dict(conservative.times),
            source_meta=dict(conservative.source_meta),
        )
    events: list[TraceEvent] = list(others)
    for shape in loops.values():
        _profile_durations(shape, constants)
        placement, release = _reschedule_loop(shape, n_threads, constants)
        for it, (thread, anchor) in placement.items():
            prof = shape.iterations[it]
            if prof.await_b is not None:
                # Scheduler anchor is the pre-phase completion ("ready");
                # awaitB occurs right there.
                events.extend(_retime_iteration(prof, thread, anchor, constants))
            else:
                events.extend(_retime_iteration(prof, thread, anchor, constants))
        for e in shape.begin_events:
            events.append(e)
        for e in shape.arrive_events:
            # Arrivals: each thread arrives when it runs out of iterations;
            # approximate as the thread's last activity (release covers it).
            events.append(e)
        for e in shape.exit_events:
            events.append(
                TraceEvent(
                    time=release,
                    thread=e.thread,
                    kind=e.kind,
                    eid=e.eid,
                    seq=e.seq,
                    iteration=e.iteration,
                    sync_var=e.sync_var,
                    sync_index=e.sync_index,
                    label=e.label,
                    overhead=0,
                )
            )
    meta = dict(trace.meta)
    meta["method"] = "liberal"
    new_trace = Trace(events, meta)
    times = {e.seq: e.time for e in new_trace}
    return Approximation(
        trace=new_trace,
        method="liberal",
        total_time=new_trace.end_time,
        times=times,
        source_meta=dict(conservative.source_meta),
    )
