"""Columnar fast path for event-based resolution.

The object resolver (:class:`repro.analysis.eventbased._Resolver`) walks
every event through a Python worklist.  But along one thread, every event
*between* synchronization points obeys the plain chain rule

    t_a(e_k) = t_a(e_{k-1}) + max(0, Δt_m - overhead_k)

(the ``_chain`` formula plus its monotonic clamp), so a whole run of
non-sync events collapses to a cumulative sum of clipped measured deltas.
Only five kinds have non-chain rules or cross-thread dependencies —
``awaitE``, ``lockAcq``, ``semAcq``, ``barrier_exit`` and ``loop_begin``
(the "special" events, a small fraction of any real trace).

This resolver therefore:

1. precomputes, per thread, the prefix sums ``P`` of clipped deltas
   (vectorized) and the positions of the special events (argsort-grouped
   sync indices);
2. runs the worklist over the specials only.  When the special at
   position ``s`` resolves to ``t_a``, every following plain event up to
   the next special is implicitly resolved as ``t_a + (P[j] - P[s])`` —
   recorded as one per-segment offset ``O = t_a - P[s]``;
3. assembles every event's time as ``P + repeat(O, segment lengths)``.

An event is *resolved* exactly when the object worklist would have
resolved it: its thread's scan cursor (``reached``) has swept past it.
The cursor starts at zero and advances only while its thread is being
visited, so a plain run on a not-yet-visited thread is still unresolved
— the same transient state the object resolver's per-thread position
cursor goes through, which is what makes eager structural errors on
damaged traces surface in the identical visit order.  Readiness checks,
resolution order, clamps, and every error message replicate the object
path — the two backends are property-tested to be byte-identical,
including on damaged traces where the *failure* must match too.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.approximation import AnalysisError
from repro.instrument.costs import AnalysisConstants
from repro.obs import core as obs
from repro.trace import columnar as _columnar
from repro.trace.columnar import NONE_SENTINEL, kind_code_mask, overhead_table
from repro.trace.events import KIND_CODE, EventKind
from repro.trace.trace import Trace

#: Kinds whose resolution rule is not the plain thread chain.
SPECIAL_KINDS = (
    EventKind.AWAIT_E,
    EventKind.LOCK_ACQ,
    EventKind.SEM_ACQ,
    EventKind.BARRIER_EXIT,
    EventKind.LOOP_BEGIN,
)

_CODE_AWAIT_E = KIND_CODE[EventKind.AWAIT_E]
_CODE_LOCK_ACQ = KIND_CODE[EventKind.LOCK_ACQ]
_CODE_SEM_ACQ = KIND_CODE[EventKind.SEM_ACQ]
_CODE_BARRIER_EXIT = KIND_CODE[EventKind.BARRIER_EXIT]
_CODE_LOOP_BEGIN = KIND_CODE[EventKind.LOOP_BEGIN]
_CODE_ADVANCE = KIND_CODE[EventKind.ADVANCE]
_CODE_AWAIT_B = KIND_CODE[EventKind.AWAIT_B]
_CODE_BARRIER_ARRIVE = KIND_CODE[EventKind.BARRIER_ARRIVE]


def _resolution_error(message: str, events=()):
    from repro.analysis.eventbased import ResolutionError

    return ResolutionError(message, tuple(events))


class _ColumnarResolver:
    """Segment-offset resolution over :class:`TraceColumns`."""

    def __init__(self, measured: Trace, constants: AnalysisConstants):
        np = _columnar.np
        self.measured = measured
        self.constants = constants
        cols = measured.columns
        self.cols = cols
        n = len(cols)
        per_kind = overhead_table(constants.costs)
        overhead = per_kind[cols.kind]

        # Thread grouping: rows per thread in storage (program) order,
        # threads visited in the same order the object worklist uses.
        ids, groups = cols.thread_order()
        by_id = dict(zip(ids, groups))
        order = list(measured.by_thread().keys())
        special = kind_code_mask(cols.kind, *SPECIAL_KINDS)

        # Full-trace state stays in numpy (one int64 per row per array);
        # the worklist converts scalars per special access instead of
        # materializing million-entry Python lists up front.  ``seg`` is
        # each row's segment index — the count of specials at-or-before it
        # in its thread — precomputed vectorized so ``_value`` needs no
        # per-access bisect.
        pos = np.empty(n, dtype=np.int64)
        tidx = np.empty(n, dtype=np.int64)
        row_prefix = np.empty(n, dtype=np.int64)
        seg = np.empty(n, dtype=np.int64)
        self.thread_rows: list = []  # per thread: row indices (np)
        self.P: list = []  # per thread: prefix sums (np)
        self.spec_pos: list = []  # per thread: special positions (np)
        self.spec_rows: list = []  # ... and their storage rows (np)
        self.m: list[int] = []  # per thread: event count
        for ti, tid in enumerate(order):
            idx = by_id[tid]
            k = len(idx)
            positions = np.arange(k)
            pos[idx] = positions
            tidx[idx] = ti
            tm = cols.time[idx]
            ov = overhead[idx]
            d = np.empty(k, dtype=np.int64)
            d[0] = max(0, int(tm[0]) - int(ov[0]))
            if k > 1:
                np.subtract(tm[1:], tm[:-1], out=d[1:])
                d[1:] -= ov[1:]
                np.maximum(d[1:], 0, out=d[1:])
            prefix = np.cumsum(d)
            sp = np.flatnonzero(special[idx])
            self.thread_rows.append(idx)
            self.P.append(prefix)
            row_prefix[idx] = prefix
            seg[idx] = np.searchsorted(sp, positions, side="right")
            self.spec_pos.append(sp)
            self.spec_rows.append(idx[sp])
            self.m.append(k)
        self.pos = pos
        self.tidx = tidx
        self.row_prefix = row_prefix
        self.seg = seg

        # Worklist state: per thread, resolved-special count, the scan
        # position (how far the worklist has actually swept — plain
        # events count as resolved only once swept past, exactly like
        # the object resolver's per-thread cursor, so eager structural
        # errors surface in the same visit order), and the accumulated
        # segment offsets (O[c] applies to positions p with c specials
        # at-or-before them).
        nthreads = len(order)
        self.ptr = [0] * nthreads
        self.reached = [0] * nthreads
        self.O: list[list[int]] = [[0] for _ in range(nthreads)]

        # Per-special payload dict is built lazily (see ``payload``): the
        # native backend's happy path reads the columns directly and never
        # needs it.
        self._payload: Optional[dict[int, tuple[int, int, int, int, int]]] = None

        self._index_sync()

    @property
    def payload(self) -> dict[int, tuple[int, int, int, int, int]]:
        """Per-special payload: (kind code, sync_var idx, sync_index,
        label idx, overhead), keyed by storage row.  Built on first use."""
        if self._payload is None:
            cols = self.cols
            per_kind = overhead_table(self.constants.costs)
            payload: dict[int, tuple[int, int, int, int, int]] = {}
            for ra in self.spec_rows:
                if len(ra) == 0:
                    continue
                for row, k, sv, si, lb, ov in zip(
                    ra.tolist(),
                    cols.kind[ra].tolist(),
                    cols.sync_var[ra].tolist(),
                    cols.sync_index[ra].tolist(),
                    cols.label[ra].tolist(),
                    per_kind[cols.kind[ra]].tolist(),
                ):
                    payload[row] = (k, sv, si, lb, ov)
            self._payload = payload
        return self._payload

    # -------------------------------------------------------------- indexes
    def _sync_key(self, row: int, sv: int, si: int) -> tuple[str, int]:
        """The event's pairing key; same ValueError as the object path."""
        if sv < 0 or si == NONE_SENTINEL:
            self.cols.event(row).sync_key  # raises "no sync identity"
        return (self.cols.sync_var_table[sv], si)

    def _sync_keys(self, rows) -> list[tuple[str, int]]:
        """Pairing keys for ``rows`` (all known to have sync identity)."""
        np = _columnar.np
        cols = self.cols
        sv_objs = np.array(cols.sync_var_table, dtype=object)
        return list(zip(
            sv_objs[cols.sync_var[rows]].tolist(),
            cols.sync_index[rows].tolist(),
        ))

    def _index_sync(self) -> None:
        np = _columnar.np
        cols = self.cols
        self.advances: dict[tuple[str, int], int] = {}
        self.await_begin: dict[tuple[str, int], int] = {}
        self.barrier_arrivals: dict[tuple[str, int], list[int]] = {}
        self.loop_anchor: dict[str, Optional[int]] = {}

        mask = kind_code_mask(
            cols.kind,
            EventKind.ADVANCE,
            EventKind.AWAIT_B,
            EventKind.BARRIER_ARRIVE,
            EventKind.LOOP_BEGIN,
        )
        rows = np.flatnonzero(mask)
        kinds = cols.kind[rows]
        pair_sel = (kinds == _CODE_ADVANCE) | (kinds == _CODE_AWAIT_B)
        pair_rows = rows[pair_sel]

        # Fast path: advance/awaitB pairing is two vectorized dict builds.
        # Any structural error (missing sync identity, duplicate advance)
        # drops to the reference scan, which raises the identical
        # exception at the identical row — errors stay byte-compatible
        # with the object resolver, only the happy path is vectorized.
        sv = cols.sync_var[pair_rows]
        si = cols.sync_index[pair_rows]
        if not bool(((sv < 0) | (si == NONE_SENTINEL)).any()):
            adv_rows = rows[kinds == _CODE_ADVANCE]
            adv_keys = self._sync_keys(adv_rows)
            self.advances = dict(zip(adv_keys, adv_rows.tolist()))
            if len(self.advances) == len(adv_keys):
                awb_rows = rows[kinds == _CODE_AWAIT_B]
                # dict build keeps last-wins semantics, like the scan.
                self.await_begin = dict(zip(
                    self._sync_keys(awb_rows), awb_rows.tolist()
                ))
                self._index_sync_scan(rows[~pair_sel])
                self._index_lock_sem()
                return
            self.advances = {}  # duplicate advance: replay for the error

        self._index_sync_scan(rows)
        self._index_lock_sem()

    def _index_sync_scan(self, rows) -> None:
        """Reference row-order scan over ``rows`` (any of the four
        indexable kinds); the error-raising path of sync indexing."""
        cols = self.cols
        sv_table = cols.sync_var_table
        lb_table = cols.label_table
        for row, k, sv, si, lb in zip(
            rows.tolist(),
            cols.kind[rows].tolist(),
            cols.sync_var[rows].tolist(),
            cols.sync_index[rows].tolist(),
            cols.label[rows].tolist(),
        ):
            if k == _CODE_ADVANCE:
                key = self._sync_key(row, sv, si)
                if key in self.advances:
                    raise _resolution_error(
                        f"duplicate advance for {key}", (cols.event(row),)
                    )
                self.advances[key] = row
            elif k == _CODE_AWAIT_B:
                self.await_begin[self._sync_key(row, sv, si)] = row
            elif k == _CODE_BARRIER_ARRIVE:
                sv_val = None if sv < 0 else sv_table[sv]
                si_val = None if si == NONE_SENTINEL else si
                key = (sv_val or "barrier", si_val or 0)
                self.barrier_arrivals.setdefault(key, []).append(row)
            else:  # LOOP_BEGIN: latest-(time, seq) predecessor anchors it
                label = "" if lb < 0 else lb_table[lb]
                p = int(self.pos[row])
                t = int(self.tidx[row])
                prev = int(self.thread_rows[t][p - 1]) if p > 0 else None
                if label not in self.loop_anchor:
                    self.loop_anchor[label] = prev
                elif prev is not None:
                    current = self.loop_anchor[label]
                    if current is None or (
                        int(cols.time[prev]),
                        int(cols.seq[prev]),
                    ) > (int(cols.time[current]), int(cols.seq[current])):
                        self.loop_anchor[label] = prev

    def _index_lock_sem(self) -> None:
        # Lock/semaphore structure is rare; only pay for it when present.
        # The Trace accessors raise the same TraceErrors the object path
        # surfaces for incomplete use triples.
        cols = self.cols
        self.lock_uses: dict = {}
        self.lock_prev_rel: dict[int, Optional[int]] = {}
        self.sem_uses: dict = {}
        self.sem_enabler: dict[int, Optional[int]] = {}
        self.sem_prev_acq: dict[int, Optional[int]] = {}
        have_locks = bool(
            kind_code_mask(
                cols.kind,
                EventKind.LOCK_REQ,
                EventKind.LOCK_ACQ,
                EventKind.LOCK_REL,
            ).any()
        )
        have_sems = bool(
            kind_code_mask(
                cols.kind,
                EventKind.SEM_REQ,
                EventKind.SEM_ACQ,
                EventKind.SEM_SIG,
            ).any()
        )
        if not (have_locks or have_sems):
            return
        seq_to_row = {s: i for i, s in enumerate(cols.seq.tolist())}
        if have_locks:
            for key, use in self.measured.lock_uses().items():
                self.lock_uses[key] = {
                    name: seq_to_row[ev.seq] for name, ev in use.items()
                }
            for _lock, keys in self.measured.lock_acquisition_order().items():
                prev_rel: Optional[int] = None
                for key in keys:
                    use = self.lock_uses[key]
                    self.lock_prev_rel[use["acq"]] = prev_rel
                    prev_rel = use["rel"]
        if have_sems:
            for key, use in self.measured.sem_uses().items():
                self.sem_uses[key] = {
                    name: seq_to_row[ev.seq] for name, ev in use.items()
                }
        if self.sem_uses:
            capacities = self.measured.meta.get("semaphores")
            if not capacities:
                raise AnalysisError(
                    "trace has semaphore events but no declared capacities "
                    "in its metadata"
                )
            signal_order = self.measured.sem_signal_order()
            for sem, grants in self.measured.sem_grant_order().items():
                cap = int(capacities[sem])
                signals = signal_order[sem]
                prev_acq: Optional[int] = None
                for k, key in enumerate(grants):
                    acq = self.sem_uses[key]["acq"]
                    if k >= cap:
                        self.sem_enabler[acq] = seq_to_row[
                            self.measured.sem_uses()[signals[k - cap]]["sig"].seq
                        ]
                    else:
                        self.sem_enabler[acq] = None
                    self.sem_prev_acq[acq] = prev_acq
                    prev_acq = acq

    # ---------------------------------------------------------- resolution
    def _resolved(self, row: int) -> bool:
        return self.pos[row] < self.reached[self.tidx[row]]

    def _value(self, row: int) -> int:
        """t_a of a resolved row: its segment offset plus its prefix."""
        return self.O[self.tidx[row]][self.seg[row]] + int(self.row_prefix[row])

    def _try_special(self, row: int, t: int, p: int) -> Optional[int]:
        """Resolve the special at thread t, position p; None if not ready."""
        kind, sv, si, lb, ov = self.payload[row]
        if kind == _CODE_AWAIT_E:
            ta = self._resolve_await_end(row, sv, si)
        elif kind == _CODE_LOCK_ACQ:
            ta = self._resolve_lock_acquire(row, sv, si)
        elif kind == _CODE_SEM_ACQ:
            ta = self._resolve_sem_acquire(row, sv, si)
        elif kind == _CODE_BARRIER_EXIT:
            ta = self._resolve_barrier_exit(row, sv, si)
        else:  # LOOP_BEGIN: chain from the initiator's pre-fork event
            label = "" if lb < 0 else self.cols.label_table[lb]
            anchor = self.loop_anchor.get(label)
            if anchor is None:
                ta = max(0, int(self.cols.time[row]) - ov)
            else:
                if not self._resolved(anchor):
                    return None
                ta = (
                    self._value(anchor)
                    + (int(self.cols.time[row]) - int(self.cols.time[anchor]))
                    - ov
                )
        if ta is None:
            return None
        if p > 0:
            ta_pred = self.O[t][-1] + int(self.P[t][p - 1])
            if ta_pred > ta:
                ta = ta_pred  # thread order is causal
        return ta if ta > 0 else 0

    def _resolve_await_end(self, row: int, sv: int, si: int) -> Optional[int]:
        key = self._sync_key(row, sv, si)
        begin = self.await_begin.get(key)
        if begin is None:
            raise _resolution_error(
                f"awaitE without awaitB for {key}", (self.cols.event(row),)
            )
        if not self._resolved(begin):
            return None
        t_begin = self._value(begin)
        advance = self.advances.get(key)
        if advance is None:
            if key[1] >= 0:
                raise _resolution_error(
                    f"awaitE {key} has no matching advance",
                    (self.cols.event(row),),
                )
            # DOACROSS prologue await: satisfied immediately by convention.
            return t_begin + self.constants.s_nowait
        if not self._resolved(advance):
            return None
        t_advance = self._value(advance)
        if t_advance <= t_begin:
            return t_begin + self.constants.s_nowait
        return t_advance + self.constants.s_wait

    def _resolve_lock_acquire(self, row: int, sv: int, si: int) -> Optional[int]:
        use = self.lock_uses.get(self._sync_key(row, sv, si))
        if use is None:  # pragma: no cover - lock_uses covers all triples
            raise AnalysisError(
                f"lock acquire without use record: {self.cols.event(row)}"
            )
        req = use["req"]
        if not self._resolved(req):
            return None
        prev_rel = self.lock_prev_rel.get(row)
        uncontended = self._value(req) + self.constants.lock_nowait
        if prev_rel is None:
            return uncontended
        if not self._resolved(prev_rel):
            return None
        handoff = self._value(prev_rel) + self.constants.lock_handoff
        return max(uncontended, handoff)

    def _resolve_sem_acquire(self, row: int, sv: int, si: int) -> Optional[int]:
        use = self.sem_uses.get(self._sync_key(row, sv, si))
        if use is None:  # pragma: no cover - sem_uses covers all triples
            raise AnalysisError(
                f"semaphore grant without use record: {self.cols.event(row)}"
            )
        req = use["req"]
        if not self._resolved(req):
            return None
        candidates = [self._value(req) + self.constants.lock_nowait]
        enabler = self.sem_enabler.get(row)
        if enabler is not None:
            if not self._resolved(enabler):
                return None
            candidates.append(self._value(enabler) + self.constants.lock_handoff)
        prev_acq = self.sem_prev_acq.get(row)
        if prev_acq is not None:
            if not self._resolved(prev_acq):
                return None
            # Preserve the measured grant order (conservative total order).
            candidates.append(self._value(prev_acq))
        return max(candidates)

    def _resolve_barrier_exit(self, row: int, sv: int, si: int) -> Optional[int]:
        sv_val = None if sv < 0 else self.cols.sync_var_table[sv]
        si_val = None if si == NONE_SENTINEL else si
        key = (sv_val or "barrier", si_val or 0)
        arrivals = self.barrier_arrivals.get(key)
        if not arrivals:
            raise _resolution_error(
                f"barrier exit {key} without arrivals", (self.cols.event(row),)
            )
        for a in arrivals:
            if not self._resolved(a):
                return None
        return (
            max(self._value(a) for a in arrivals)
            + self.constants.barrier_release
        )

    def run(self) -> dict[int, int]:
        nthreads = len(self.thread_rows)
        remaining = sum(self.m)  # every event, like the object worklist
        while remaining > 0:
            progress = 0
            for t in range(nthreads):
                sp = self.spec_pos[t]
                rows = self.spec_rows[t]
                while True:
                    # Sweep the plain run up to the next special (those
                    # rows become resolved *now*, not implicitly before
                    # the worklist reaches them).
                    nxt = (
                        int(sp[self.ptr[t]])
                        if self.ptr[t] < len(sp)
                        else self.m[t]
                    )
                    if self.reached[t] < nxt:
                        progress += nxt - self.reached[t]
                        self.reached[t] = nxt
                    if self.ptr[t] >= len(sp):
                        break
                    p = nxt
                    ta = self._try_special(int(rows[self.ptr[t]]), t, p)
                    if ta is None:
                        break
                    self.O[t].append(ta - int(self.P[t][p]))
                    self.ptr[t] += 1
                    self.reached[t] = p + 1
                    progress += 1
            if progress == 0:
                stuck = [
                    self.cols.event(self.spec_rows[t][self.ptr[t]])
                    for t in range(nthreads)
                    if self.ptr[t] < len(self.spec_pos[t])
                ]
                raise _resolution_error(
                    "event resolution deadlocked (malformed trace?); "
                    "unresolvable events:\n  "
                    + "\n  ".join(str(e) for e in stuck[:8]),
                    tuple(stuck),
                )
            remaining -= progress
        return self._assemble()

    def _assemble(self) -> dict[int, int]:
        """Every event's time: per-thread prefix plus repeated offsets."""
        np = _columnar.np
        out = np.empty(len(self.cols), dtype=np.int64)
        for t, idx in enumerate(self.thread_rows):
            bounds = np.empty(len(self.spec_pos[t]) + 2, dtype=np.int64)
            bounds[0] = 0
            bounds[1:-1] = self.spec_pos[t]
            bounds[-1] = self.m[t]
            offsets = np.array(self.O[t], dtype=np.int64)
            out[idx] = self.P[t] + np.repeat(offsets, np.diff(bounds))
        return dict(zip(self.cols.seq.tolist(), out.tolist()))


def resolve_columnar(measured: Trace, constants: AnalysisConstants) -> dict[int, int]:
    """Event-based resolution over the columnar backend.

    Returns the same ``seq -> t_a`` mapping as
    ``_Resolver(measured, constants).run()``, and raises the same
    exceptions (messages included) on malformed traces.
    """
    with obs.span("analysis.columnar.resolve", n_events=len(measured)):
        return _ColumnarResolver(measured, constants).run()
