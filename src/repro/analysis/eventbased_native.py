"""Compiled (native) backend for event-based resolution.

``_NativeResolver`` reuses every indexing structure of
:class:`repro.analysis.eventbased_columnar._ColumnarResolver` — thread
grouping, prefix sums, sync pairing, payloads, and *all* of its eager
structural errors — and replaces only the Python worklist sweep with one
call into the JIT-built C kernel (:mod:`repro.native`).  The packer lowers
the resolver's dictionaries into flat int64 dependency arrays:

* each special event becomes a row in thread-major ``spec_*`` tables with a
  rule code, up to three dependency rows, and precomputed prefix values;
* structural failures the Python worklist would raise *when visiting* a
  special (awaitE without awaitB, stripped sync identity, barrier exit
  without arrivals, …) become a per-special error flag;  the kernel stops
  on the first flagged special it tries — or on a deadlocked round — and
  the wrapper replays exactly that special through the interpreted
  ``_try_special``, reproducing the exception type, message, and implicated
  events byte-for-byte.

Equivalence with the ``"columnar"`` and ``"object"`` backends (successes
and failures alike) is property-tested in
``tests/property/test_native_backend.py`` and enforced by the audit
differential oracle's ``eventbased-native-*`` pairs.

The kernel computes in two's-complement ``int64``; the Python resolvers
compute in unbounded ints.  Traces whose magnitudes could overflow the
headroom (|values| approaching 2^60) are resolved by the interpreted
worklist instead — same results, no wraparound risk.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.eventbased_columnar import (
    _CODE_AWAIT_E,
    _CODE_BARRIER_EXIT,
    _CODE_LOCK_ACQ,
    _CODE_LOOP_BEGIN,
    _CODE_SEM_ACQ,
    _ColumnarResolver,
    _resolution_error,
)
from repro.analysis.approximation import AnalysisError
from repro.instrument.costs import AnalysisConstants
from repro.obs import core as obs
from repro.trace import columnar as _columnar
from repro.trace.columnar import NONE_SENTINEL
from repro.trace.trace import Trace

#: |values| must stay below this for int64 kernel arithmetic to be exact.
_INT64_HEADROOM = 1 << 60
#: Analysis constants are tiny in practice; anything bigger falls back.
_CONSTANT_LIMIT = 1 << 40


class _NativeResolver(_ColumnarResolver):
    """Segment-offset resolution with the sweep compiled to C."""

    # ------------------------------------------------------------- packing
    def _int64_safe(self) -> bool:
        """True if every kernel input/intermediate fits int64 comfortably."""
        c = self.constants
        for value in (
            c.s_nowait, c.s_wait, c.lock_nowait, c.lock_handoff,
            c.barrier_release,
        ):
            if abs(int(value)) >= _CONSTANT_LIMIT:
                return False
        time = self.cols.time
        if len(time) and not (
            int(time.min()) > -_INT64_HEADROOM
            and int(time.max()) < _INT64_HEADROOM
        ):
            return False
        for prefix in self.P:
            if len(prefix) and not (
                int(prefix.min()) >= 0 and int(prefix.max()) < _INT64_HEADROOM
            ):
                return False
        return True

    def _pack(self) -> Optional[dict]:
        """Flat int64 tables for the kernel (None on an empty trace)."""
        from repro.native import source as _src

        np = _columnar.np
        nthreads = len(self.m)
        if nthreads == 0:
            return None
        i64 = np.int64
        nspec = np.array([len(sp) for sp in self.spec_pos], dtype=i64)
        spec_off = np.zeros(nthreads, dtype=i64)
        np.cumsum(nspec[:-1], out=spec_off[1:])
        o_off = np.zeros(nthreads, dtype=i64)
        np.cumsum(nspec[:-1] + 1, out=o_off[1:])
        n_spec = int(nspec.sum())

        if n_spec:
            spec_pos = np.concatenate(self.spec_pos)
            spec_rows = np.concatenate(self.spec_rows)
        else:
            spec_pos = np.zeros(0, dtype=i64)
            spec_rows = np.zeros(0, dtype=i64)

        # Prefix values at each special and at its thread predecessor,
        # vectorized per thread.
        spec_prefix = np.zeros(n_spec, dtype=i64)
        spec_prev_prefix = np.zeros(n_spec, dtype=i64)
        for t in range(nthreads):
            lo, hi = int(spec_off[t]), int(spec_off[t]) + int(nspec[t])
            if lo == hi:
                continue
            sp = self.spec_pos[t]
            spec_prefix[lo:hi] = self.P[t][sp]
            prev = np.maximum(sp - 1, 0)
            spec_prev_prefix[lo:hi] = np.where(sp > 0, self.P[t][prev], 0)

        err = np.zeros(n_spec, dtype=i64)
        dep_a = np.full(n_spec, -1, dtype=i64)
        dep_b = np.full(n_spec, -1, dtype=i64)
        dep_c = np.full(n_spec, -1, dtype=i64)
        aux = np.zeros(n_spec, dtype=i64)
        arr_off = np.zeros(n_spec, dtype=i64)
        arr_len = np.zeros(n_spec, dtype=i64)
        arrivals_flat: list[int] = []

        cols = self.cols
        spec_kinds = cols.kind[spec_rows] if n_spec else np.zeros(0, dtype=i64)
        rule_lut = np.zeros(int(spec_kinds.max()) + 1 if n_spec else 1, dtype=i64)
        for code, r in (
            (_CODE_AWAIT_E, _src.RULE_AWAIT_E),
            (_CODE_LOCK_ACQ, _src.RULE_LOCK_ACQ),
            (_CODE_SEM_ACQ, _src.RULE_SEM_ACQ),
            (_CODE_BARRIER_EXIT, _src.RULE_BARRIER_EXIT),
            (_CODE_LOOP_BEGIN, _src.RULE_LOOP_BEGIN),
        ):
            if code < len(rule_lut):
                rule_lut[code] = r
        rule = rule_lut[spec_kinds]

        sv_table = cols.sync_var_table
        lb_table = cols.label_table
        time = cols.time
        advances = self.advances
        await_begin = self.await_begin

        # awaitE is the bulk of any real trace's specials: vectorize the
        # identity check and batch the two pairing lookups.
        ae = np.flatnonzero(spec_kinds == _CODE_AWAIT_E)
        if len(ae):
            ae_rows = spec_rows[ae]
            bad = (cols.sync_var[ae_rows] < 0) | (
                cols.sync_index[ae_rows] == NONE_SENTINEL
            )
            err[ae[bad]] = 1  # "no sync identity" ValueError on visit
            good = ae[~bad]
            if len(good):
                keys = self._sync_keys(spec_rows[good])
                begin = np.array(
                    [await_begin.get(k, -1) for k in keys], dtype=i64
                )
                dep_a[good] = begin
                err[good[begin < 0]] = 1  # "awaitE without awaitB"
                adv = [advances.get(k) for k in keys]
                dep_b[good] = [
                    # A missing advance raises only once the awaitB is
                    # resolved (Python visit order); si < 0 marks the
                    # DOACROSS prologue await, satisfied by convention.
                    a if a is not None
                    else (_src.ADV_MISSING if k[1] >= 0 else _src.ADV_PROLOGUE)
                    for a, k in zip(adv, keys)
                ]

        # The remaining rules are rare; a scalar loop over them is cheap.
        rest = np.flatnonzero(
            (spec_kinds != _CODE_AWAIT_E) if n_spec else spec_kinds
        )
        per_kind = _columnar.overhead_table(self.constants.costs)
        for s in rest.tolist():
            row = int(spec_rows[s])
            kind = int(spec_kinds[s])
            sv = int(cols.sync_var[row])
            si = int(cols.sync_index[row])
            if kind == _CODE_LOOP_BEGIN:
                lb = int(cols.label[row])
                ov = int(per_kind[kind])
                label = "" if lb < 0 else lb_table[lb]
                anchor = self.loop_anchor.get(label)
                if anchor is None:
                    aux[s] = max(0, int(time[row]) - ov)
                else:
                    dep_a[s] = anchor
                    aux[s] = int(time[row]) - int(time[anchor]) - ov
                continue
            if kind == _CODE_BARRIER_EXIT:
                sv_val = None if sv < 0 else sv_table[sv]
                si_val = None if si == NONE_SENTINEL else si
                arrivals = self.barrier_arrivals.get(
                    (sv_val or "barrier", si_val or 0)
                )
                if not arrivals:
                    err[s] = 1  # "barrier exit ... without arrivals"
                    continue
                arr_off[s] = len(arrivals_flat)
                arr_len[s] = len(arrivals)
                arrivals_flat.extend(arrivals)
                continue
            # lockAcq / semAcq key on the sync identity first.
            if sv < 0 or si == NONE_SENTINEL:
                err[s] = 1  # "no sync identity" ValueError
                continue
            key = (sv_table[sv], si)
            if kind == _CODE_LOCK_ACQ:
                use = self.lock_uses.get(key)
                if use is None:  # pragma: no cover - lock_uses is complete
                    err[s] = 1
                    continue
                dep_a[s] = use["req"]
                prev_rel = self.lock_prev_rel.get(row)
                if prev_rel is not None:
                    dep_b[s] = prev_rel
            else:  # _CODE_SEM_ACQ
                use = self.sem_uses.get(key)
                if use is None:  # pragma: no cover - sem_uses is complete
                    err[s] = 1
                    continue
                dep_a[s] = use["req"]
                enabler = self.sem_enabler.get(row)
                if enabler is not None:
                    dep_b[s] = enabler
                prev_acq = self.sem_prev_acq.get(row)
                if prev_acq is not None:
                    dep_c[s] = prev_acq

        c = self.constants
        return {
            "nthreads": nthreads,
            "total_events": sum(self.m),
            "m": np.array(self.m, dtype=i64),
            "nspec": nspec,
            "spec_off": spec_off,
            "o_off": o_off,
            "spec_pos": spec_pos,
            "spec_rows": spec_rows,
            "spec_rule": rule,
            "spec_err": err,
            "spec_prefix": spec_prefix,
            "spec_prev_prefix": spec_prev_prefix,
            "dep_a": dep_a,
            "dep_b": dep_b,
            "dep_c": dep_c,
            "aux": aux,
            "arr_off": arr_off,
            "arr_len": arr_len,
            "arrival_rows": np.array(arrivals_flat, dtype=i64),
            "row_prefix": self.row_prefix,
            "row_pos": self.pos,
            "row_tidx": self.tidx,
            "row_seg": self.seg,
            "s_nowait": int(c.s_nowait),
            "s_wait": int(c.s_wait),
            "lock_nowait": int(c.lock_nowait),
            "lock_handoff": int(c.lock_handoff),
            "barrier_release": int(c.barrier_release),
            "o_flat": np.zeros(n_spec + nthreads, dtype=i64),
            "ptr": np.zeros(nthreads, dtype=i64),
            "reached": np.zeros(nthreads, dtype=i64),
            "out_state": np.zeros(1, dtype=i64),
        }

    # ----------------------------------------------------------- execution
    def _sync_state(self, pack: dict) -> None:
        """Mirror the kernel's worklist state back into resolver attrs so
        ``_resolved``/``_value``/``_try_special`` (error replay) and
        ``_assemble`` see exactly what the interpreted sweep would have."""
        nthreads = pack["nthreads"]
        ptr = pack["ptr"].tolist()
        self.ptr = ptr
        self.reached = pack["reached"].tolist()
        o_flat = pack["o_flat"]
        o_off = pack["o_off"]
        self.O = [
            o_flat[int(o_off[t]): int(o_off[t]) + ptr[t] + 1].tolist()
            for t in range(nthreads)
        ]

    def run(self, kernel=None):  # type: ignore[override]
        from repro import native

        if kernel is None:
            kernel = native.get_resolve_kernel()
        if not self._int64_safe():
            # Magnitudes too close to int64: the interpreted worklist is
            # exact and byte-identical; correctness beats speed here.
            obs.count("analysis.native.overflow_fallback")
            return super().run()
        pack = self._pack()
        if pack is None:
            return self._assemble()
        from repro.native import source as _src

        args = tuple(pack[name] for _, name in _src.RESOLVE_ARGS)
        status = kernel(*args)
        self._sync_state(pack)
        if status == _src.STATUS_ERROR:
            s = int(pack["out_state"][0])
            row = int(pack["spec_rows"][s])
            t = int(self.tidx[row])
            p = int(pack["spec_pos"][s])
            # Replay the single special the kernel stopped on; the
            # interpreted rule raises the identical exception.
            self._try_special(row, t, p)
            raise AnalysisError(  # pragma: no cover - defensive
                "native kernel flagged special "
                f"{s} (row {row}) but the interpreted replay resolved it"
            )
        if status == _src.STATUS_DEADLOCK:
            stuck = [
                self.cols.event(int(self.spec_rows[t][self.ptr[t]]))
                for t in range(pack["nthreads"])
                if self.ptr[t] < len(self.spec_pos[t])
            ]
            raise _resolution_error(
                "event resolution deadlocked (malformed trace?); "
                "unresolvable events:\n  "
                + "\n  ".join(str(e) for e in stuck[:8]),
                tuple(stuck),
            )
        if status != _src.STATUS_OK:  # pragma: no cover - defensive
            raise AnalysisError(f"native kernel returned status {status}")
        return self._assemble()


def resolve_native(measured: Trace, constants: AnalysisConstants) -> dict[int, int]:
    """Event-based resolution through the compiled kernel.

    Same ``seq -> t_a`` mapping — and the same exceptions on malformed
    traces — as :func:`repro.analysis.eventbased_columnar.resolve_columnar`
    and the object worklist.  Raises
    :class:`repro.native.NativeUnavailable` when the kernel cannot be
    built or loaded here (callers pick a fallback backend).
    """
    from repro import native

    kernel = native.get_resolve_kernel()  # raise before any indexing work
    return _NativeResolver(measured, constants).run(kernel)
