"""Convenience front-end: pick the right analysis for a trace.

``auto_approximation`` inspects the measured trace: if it carries
synchronization identity (paired advance/await, lock, or semaphore
events) the event-based model applies; otherwise only the time-based
model can be used (and a warning is attached when the trace clearly came
from a parallel execution, where time-based results are unreliable).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.analysis.approximation import AnalysisError, Approximation
from repro.analysis.eventbased import event_based_approximation
from repro.analysis.timebased import time_based_approximation
from repro.instrument.costs import AnalysisConstants
from repro.obs import core as obs
from repro.trace import columnar as _columnar
from repro.trace.columnar import kind_code_mask
from repro.trace.events import SYNC_KINDS, EventKind
from repro.trace.trace import Trace


@dataclass(frozen=True)
class AutoResult:
    """An approximation plus how/why the method was chosen."""

    approximation: Approximation
    method: str
    reason: str
    warnings: tuple[str, ...] = ()

    @property
    def total_time(self) -> int:
        return self.approximation.total_time


def _has_sync_identity(trace: Trace) -> bool:
    """True if the trace carries anything the event-based rules can use:
    paired sync events, barrier markers, or loop-entry markers.

    When the columnar form is already realized this is one vectorized
    kind-mask over ``columns.kind`` instead of materializing every event
    object just to look at its kind.
    """
    if _columnar.HAVE_NUMPY and trace.has_columns:
        return bool(
            kind_code_mask(
                trace.columns.kind, *SYNC_KINDS, EventKind.LOOP_BEGIN
            ).any()
        )
    return any(
        e.kind in SYNC_KINDS or e.kind is EventKind.LOOP_BEGIN
        for e in trace.events
    )


def _looks_parallel(trace: Trace) -> bool:
    if _columnar.HAVE_NUMPY and trace.has_columns:
        thread = trace.columns.thread
        return bool(len(thread)) and bool((thread != thread[0]).any())
    return len(trace.threads) > 1


def auto_approximation(
    measured: Trace,
    constants: AnalysisConstants,
    method: str = "auto",
    *,
    time_backend: str = "auto",
) -> AutoResult:
    """Analyze a measured trace with the best applicable model.

    ``method``: ``"auto"`` (default), ``"event"`` or ``"time"`` to force.

    ``time_backend`` is forwarded to :func:`time_based_approximation`
    when the time-based model runs (``"auto"`` picks columnar, switching
    to the bounded-memory streaming fold above
    :data:`~repro.analysis.timebased.STREAMING_AUTO_THRESHOLD` events);
    the event-based model keeps its own backend pick.
    """
    warnings: list[str] = []
    if method == "event" or (method == "auto" and _has_sync_identity(measured)):
        obs.count("analysis.auto.event")
        approx = event_based_approximation(measured, constants)
        reason = (
            "trace carries synchronization identity"
            if method == "auto"
            else "forced by caller"
        )
        return AutoResult(approx, "event-based", reason, tuple(warnings))
    if method not in ("auto", "time"):
        raise AnalysisError(f"unknown method {method!r}; use auto/event/time")
    if _looks_parallel(measured):
        warnings.append(
            "trace is multi-threaded but carries no synchronization "
            "identity: time-based results are unreliable for dependent "
            "execution (paper Table 1) — re-measure with the FULL plan"
        )
    obs.count("analysis.auto.time")
    approx = time_based_approximation(measured, constants, backend=time_backend)
    reason = (
        "no synchronization identity in trace"
        if method == "auto"
        else "forced by caller"
    )
    return AutoResult(approx, "time-based", reason, tuple(warnings))
