"""Time-based perturbation analysis (§3).

Model assumption: events are execution-independent, so an event's true time
differs from its measured time only by the accumulated instrumentation
overhead on its own thread.  Along each thread::

    t_a(e_1) = t_m(e_1) - overhead(e_1)
    t_a(e_k) = t_a(e_{k-1}) + [t_m(e_k) - t_m(e_{k-1})] - overhead(e_k)

i.e. inter-event intervals are preserved minus the probe cost charged at the
later event.  This is exact for sequential and vector execution, where the
execution states form a total order and event times are affected only by
instrumentation overhead.  For dependent concurrent execution it fails in
both directions (Table 1): waiting that instrumentation *removed* is not
reintroduced (loops 3/4 → under-approximation) and waiting that
instrumentation *caused* is not removed (loop 17 → over-approximation).
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.approximation import (
    AnalysisError,
    Approximation,
    build_approx_trace,
    check_policy,
)
from repro.instrument.costs import AnalysisConstants, InstrumentationCosts
from repro.obs import core as obs
from repro.resilience.repair import RepairReport, repair_trace
from repro.resilience.validate import Diagnostic, validate_trace
from repro.trace import columnar as _columnar
from repro.trace.trace import Trace

#: Analysis backends accepted by :func:`time_based_approximation`.
BACKENDS = ("auto", "columnar", "object", "streaming")

#: Above this many events ``backend="auto"`` picks the streaming fold:
#: identical output, but the working set drops from whole-trace delta
#: arrays to one chunk's worth.
STREAMING_AUTO_THRESHOLD = 1 << 20


def _per_event_times(measured: Trace, costs: InstrumentationCosts) -> dict[int, int]:
    """Reference implementation: per-event Python loop over thread views.

    Kept as the numpy-free fallback and as the baseline the columnar
    benchmark (``benchmarks/bench_columnar.py``) compares against; the
    vectorized path must reproduce it value-for-value.
    """
    times: dict[int, int] = {}
    for view in measured.by_thread().values():
        prev_tm: Optional[int] = None
        prev_ta: Optional[int] = None
        for e in view:
            overhead = costs.overhead_for(e.kind)
            if prev_tm is None:
                ta = e.time - overhead
            else:
                ta = prev_ta + (e.time - prev_tm) - overhead
            # Overhead mis-calibration (an ablation input) could drive an
            # interval negative; clamp to preserve thread order.
            if prev_ta is not None and ta < prev_ta:
                ta = prev_ta
            if ta < 0:
                ta = 0
            times[e.seq] = ta
            prev_tm, prev_ta = e.time, ta
    return times


def _vectorized_times(measured: Trace, costs: InstrumentationCosts) -> dict[int, int]:
    """Columnar implementation: per-thread cumulative sums, no event loop.

    Along one thread the recurrence ``t_a(e_k) = t_a(e_{k-1}) +
    max(0, Δt_m - overhead_k)`` (with ``t_a(e_1) = max(0, t_m(e_1) -
    overhead_1)``) is exactly the loop in :func:`_per_event_times` — the
    clamp-to-previous rule is the same as clipping each interval at zero —
    so the whole thread reduces to one ``cumsum`` over clipped deltas.
    """
    np = _columnar.np
    cols = measured.columns
    per_kind = _columnar.overhead_table(costs)
    overhead = per_kind[cols.kind]
    ta_all = np.empty(len(cols), dtype=np.int64)
    for _tid, idx in zip(*cols.thread_order()):
        tm = cols.time[idx]
        ov = overhead[idx]
        deltas = np.empty(len(idx), dtype=np.int64)
        deltas[0] = max(0, int(tm[0]) - int(ov[0]))
        if len(idx) > 1:
            np.subtract(tm[1:], tm[:-1], out=deltas[1:])
            deltas[1:] -= ov[1:]
            np.maximum(deltas[1:], 0, out=deltas[1:])
        ta_all[idx] = np.cumsum(deltas)
    return dict(zip(cols.seq.tolist(), ta_all.tolist()))


def _streaming_times(
    measured: Trace,
    costs: InstrumentationCosts,
    chunk_events: Optional[int] = None,
) -> dict[int, int]:
    """Chunked implementation: the columnar cumsum run slice-by-slice.

    Drives :class:`repro.trace.stream.TimeBasedFold` over contiguous
    column slices, exactly the pass :func:`repro.trace.stream.stream_time_based`
    runs over a v3 file's chunks — so the audit pair that pins
    streaming == columnar on in-memory traces covers the on-file path's
    arithmetic too.  Output is identical to :func:`_vectorized_times`
    (cumsum associativity; see the fold's docstring).
    """
    from repro.trace.binio import DEFAULT_CHUNK_EVENTS
    from repro.trace.stream import TimeBasedFold

    np = _columnar.np
    cols = measured.columns
    n = len(cols)
    step = chunk_events if chunk_events else DEFAULT_CHUNK_EVENTS
    fold = TimeBasedFold(_columnar.overhead_table(costs))
    ta_all = np.empty(n, dtype=np.int64)
    for start in range(0, n, step):
        stop = min(start + step, n)
        ta_all[start:stop] = fold.feed(cols.slice(start, stop))
    return dict(zip(cols.seq.tolist(), ta_all.tolist()))


def time_based_approximation(
    measured: Trace,
    constants: AnalysisConstants,
    policy: str = "strict",
    *,
    backend: str = "auto",
) -> Approximation:
    """Apply the time-based model to a measured trace.

    ``constants.costs`` supplies the per-event-kind overheads to remove
    (the paper's in-vitro measured instrumentation costs).

    Thread anchoring: the first event on each thread is anchored at its
    measured absolute time minus its own overhead.  The model has no
    inter-thread knowledge, so lateness a thread inherited from *another*
    thread's instrumented execution (e.g. an inflated sequential prologue
    delaying loop start) is retained — one of the systematic errors
    event-based analysis corrects.

    ``policy``: ``"strict"`` analyzes the trace as-is (the model itself
    never interprets sync structure, so it only rejects empty or
    uninstrumented traces); ``"repair"`` / ``"skip"`` first validate and
    mend/drop damage (missing timestamps, clock regressions, broken sync
    structure) via :mod:`repro.resilience`, attaching diagnostics and the
    repair report to the result.

    ``backend``: ``"columnar"`` runs the vectorized per-thread cumsum over
    ``measured.columns``; ``"streaming"`` runs the same cumsum
    chunk-by-chunk with per-thread carry state (bounded working set, the
    arithmetic behind :func:`repro.trace.stream.stream_time_based`);
    ``"object"`` runs the per-event reference loop; ``"auto"`` (default)
    picks columnar whenever numpy is available, switching to streaming
    above :data:`STREAMING_AUTO_THRESHOLD` events.  All backends produce
    identical results (property- and audit-tested); the knob exists for
    the regression benchmark and numpy-free environments.
    """
    check_policy(policy)
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown analysis backend {backend!r}; expected one of {BACKENDS}"
        )
    diagnostics: list[Diagnostic] = []
    report: Optional[RepairReport] = None
    if policy != "strict":
        diagnostics = validate_trace(measured)
        result = repair_trace(measured, mode=policy)
        measured, report = result.trace, result.report
    if not len(measured):
        raise AnalysisError("cannot analyze an empty trace")
    if not measured.meta.get("instrumented", True):
        raise AnalysisError(
            "trace is not a measured (instrumented) trace; nothing to remove"
        )
    if backend == "auto":
        if not _columnar.HAVE_NUMPY:
            backend = "object"
        elif len(measured) > STREAMING_AUTO_THRESHOLD:
            backend = "streaming"
        else:
            backend = "columnar"
    with obs.span(
        "analysis.timebased", backend=backend, n_events=len(measured)
    ):
        if backend == "columnar":
            times = _vectorized_times(measured, constants.costs)
        elif backend == "streaming":
            times = _streaming_times(measured, constants.costs)
        else:
            times = _per_event_times(measured, constants.costs)
    total = max(times.values())
    return Approximation(
        trace=build_approx_trace(measured, times, "time-based"),
        method="time-based",
        total_time=total,
        times=times,
        source_meta=dict(measured.meta),
        diagnostics=diagnostics,
        repair_report=report,
    )
