"""Time-based perturbation analysis (§3).

Model assumption: events are execution-independent, so an event's true time
differs from its measured time only by the accumulated instrumentation
overhead on its own thread.  Along each thread::

    t_a(e_1) = t_m(e_1) - overhead(e_1)
    t_a(e_k) = t_a(e_{k-1}) + [t_m(e_k) - t_m(e_{k-1})] - overhead(e_k)

i.e. inter-event intervals are preserved minus the probe cost charged at the
later event.  This is exact for sequential and vector execution, where the
execution states form a total order and event times are affected only by
instrumentation overhead.  For dependent concurrent execution it fails in
both directions (Table 1): waiting that instrumentation *removed* is not
reintroduced (loops 3/4 → under-approximation) and waiting that
instrumentation *caused* is not removed (loop 17 → over-approximation).
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.approximation import (
    AnalysisError,
    Approximation,
    build_approx_trace,
    check_policy,
)
from repro.instrument.costs import AnalysisConstants
from repro.resilience.repair import RepairReport, repair_trace
from repro.resilience.validate import Diagnostic, validate_trace
from repro.trace.trace import Trace


def time_based_approximation(
    measured: Trace, constants: AnalysisConstants, policy: str = "strict"
) -> Approximation:
    """Apply the time-based model to a measured trace.

    ``constants.costs`` supplies the per-event-kind overheads to remove
    (the paper's in-vitro measured instrumentation costs).

    Thread anchoring: the first event on each thread is anchored at its
    measured absolute time minus its own overhead.  The model has no
    inter-thread knowledge, so lateness a thread inherited from *another*
    thread's instrumented execution (e.g. an inflated sequential prologue
    delaying loop start) is retained — one of the systematic errors
    event-based analysis corrects.

    ``policy``: ``"strict"`` analyzes the trace as-is (the model itself
    never interprets sync structure, so it only rejects empty or
    uninstrumented traces); ``"repair"`` / ``"skip"`` first validate and
    mend/drop damage (missing timestamps, clock regressions, broken sync
    structure) via :mod:`repro.resilience`, attaching diagnostics and the
    repair report to the result.
    """
    check_policy(policy)
    diagnostics: list[Diagnostic] = []
    report: Optional[RepairReport] = None
    if policy != "strict":
        diagnostics = validate_trace(measured)
        result = repair_trace(measured, mode=policy)
        measured, report = result.trace, result.report
    if not measured.events:
        raise AnalysisError("cannot analyze an empty trace")
    if not measured.meta.get("instrumented", True):
        raise AnalysisError(
            "trace is not a measured (instrumented) trace; nothing to remove"
        )
    costs = constants.costs
    times: dict[int, int] = {}
    for view in measured.by_thread().values():
        prev_tm: Optional[int] = None
        prev_ta: Optional[int] = None
        for e in view:
            overhead = costs.overhead_for(e.kind)
            if prev_tm is None:
                ta = e.time - overhead
            else:
                ta = prev_ta + (e.time - prev_tm) - overhead
            # Overhead mis-calibration (an ablation input) could drive an
            # interval negative; clamp to preserve thread order.
            if prev_ta is not None and ta < prev_ta:
                ta = prev_ta
            if ta < 0:
                ta = 0
            times[e.seq] = ta
            prev_tm, prev_ta = e.time, ta
    total = max(times.values())
    return Approximation(
        trace=build_approx_trace(measured, times, "time-based"),
        method="time-based",
        total_time=total,
        times=times,
        source_meta=dict(measured.meta),
        diagnostics=diagnostics,
        repair_report=report,
    )
