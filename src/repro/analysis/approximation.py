"""Approximation result type shared by all analysis models."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.trace.events import TraceEvent
from repro.trace.trace import Trace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.resilience.repair import RepairReport
    from repro.resilience.validate import Diagnostic


class AnalysisError(RuntimeError):
    """The analysis could not be applied to the given trace."""


#: Degradation policies accepted by the analysis entry points.
POLICIES = ("strict", "repair", "skip")


def check_policy(policy: str) -> None:
    """Reject unknown degradation policies early and loudly."""
    if policy not in POLICIES:
        raise ValueError(
            f"unknown degradation policy {policy!r}; expected one of {POLICIES}"
        )


@dataclass
class Approximation:
    """An approximated execution reconstructed from a measured trace.

    Attributes
    ----------
    trace:
        The approximated trace τ_a: the measured events re-timed with
        approximated occurrence times ``t_a`` (instrumentation overheads
        zeroed).  Event identity (seq) is preserved so events can be
        matched back to the measured trace.
    method:
        ``"time-based"``, ``"event-based"``, or ``"liberal"``.
    total_time:
        Approximated total execution time: the largest ``t_a`` in the
        approximation (program start is time 0).
    times:
        Map from measured-event ``seq`` to ``t_a``.
    source_meta:
        Metadata of the measured trace the approximation came from.
    diagnostics:
        Validator findings on the input trace when a non-strict
        degradation policy was used (empty under ``policy="strict"``).
    repair_report:
        What the repair pass changed when ``policy`` was ``"repair"`` or
        ``"skip"``; None under ``policy="strict"``.
    """

    trace: Trace
    method: str
    total_time: int
    times: dict[int, int]
    source_meta: dict = field(default_factory=dict)
    diagnostics: list["Diagnostic"] = field(default_factory=list)
    repair_report: Optional["RepairReport"] = None

    def t_a(self, event: TraceEvent) -> int:
        """Approximated time of a measured event."""
        try:
            return self.times[event.seq]
        except KeyError:
            raise AnalysisError(f"event not covered by approximation: {event}") from None

    def thread_span(self, thread: int) -> tuple[int, int]:
        """(first, last) approximated event times on a thread."""
        view = self.trace.thread(thread)
        return (view.start_time, view.end_time)


def build_approx_trace(
    measured: Trace, times: dict[int, int], method: str
) -> Trace:
    """Re-time measured events with approximated times.

    Events keep their seq identity; overheads are zeroed (the approximated
    execution is uninstrumented by definition).  When the measured trace
    already has its columnar form realized, the re-timing is a column swap
    (no event objects are created) and the result is columnar-backed.
    """
    if measured.has_columns:
        from repro.trace import columnar as _columnar

        np = _columnar.np
        cols = measured.columns
        try:
            new_times = [times[s] for s in cols.seq.tolist()]
        except KeyError as exc:
            raise AnalysisError(
                f"no approximated time for event seq {exc.args[0]}"
            ) from None
        new_cols = cols.replace(
            time=np.asarray(new_times, dtype=np.int64),
            overhead=np.zeros(len(cols), dtype=np.int64),
        )
        meta = dict(measured.meta)
        meta["kind"] = "approximated"
        meta["method"] = method
        return Trace.from_columns(new_cols, meta)
    re_timed = []
    for e in measured.events:
        if e.seq not in times:
            raise AnalysisError(f"no approximated time for event {e}")
        re_timed.append(
            TraceEvent(
                time=times[e.seq],
                thread=e.thread,
                kind=e.kind,
                eid=e.eid,
                seq=e.seq,
                iteration=e.iteration,
                sync_var=e.sync_var,
                sync_index=e.sync_index,
                label=e.label,
                overhead=0,
            )
        )
    meta = dict(measured.meta)
    meta["kind"] = "approximated"
    meta["method"] = method
    return Trace(re_timed, meta)
