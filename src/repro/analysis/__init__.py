"""Performance perturbation analysis — the paper's contribution.

Given a *measured* trace τ_m and the platform constants
(:class:`repro.instrument.AnalysisConstants`), these models reconstruct an
*approximated* trace τ_a estimating the uninstrumented execution:

* :func:`time_based_approximation` (§3) — removes per-event instrumentation
  overhead along each thread independently.  Exact for sequential/vector
  execution; systematically wrong when instrumentation changed
  synchronization waiting.
* :func:`event_based_approximation` (§4) — additionally replays
  advance/await and barrier semantics so waiting is reconstructed from
  dependency structure rather than copied from the perturbed measurement.

Both consume **only** the measured trace and the analysis constants; the
uninstrumented ground truth is used solely for scoring
(:mod:`repro.analysis.errors`).
"""

from repro.analysis.approximation import (
    Approximation,
    AnalysisError,
    POLICIES,
    check_policy,
)
from repro.analysis.timebased import time_based_approximation
from repro.analysis.eventbased import ResolutionError, event_based_approximation
from repro.analysis.errors import (
    ExecutionRatios,
    compare_ratios,
    percent_error,
    per_event_errors,
)
from repro.analysis.reschedule import liberal_approximation
from repro.analysis.auto import auto_approximation, AutoResult

__all__ = [
    "auto_approximation",
    "AutoResult",
    "Approximation",
    "AnalysisError",
    "ResolutionError",
    "POLICIES",
    "check_policy",
    "time_based_approximation",
    "event_based_approximation",
    "liberal_approximation",
    "ExecutionRatios",
    "compare_ratios",
    "percent_error",
    "per_event_errors",
]
