"""Event-trace model: events, traces, partial orders, and trace file I/O.

Terminology follows the paper (§2): a *logical event trace* τ is the
time-ordered event sequence of the uninstrumented ("actual") execution; a
*measured event trace* τ_m is the trace captured by instrumentation and
reflects the perturbed execution.  Perturbation analysis
(:mod:`repro.analysis`) maps τ_m to an *approximated* trace τ_a.
"""

from repro.trace.events import (
    EventKind,
    TraceEvent,
    SYNC_KINDS,
    KIND_LIST,
    KIND_CODE,
    is_sync_kind,
    kind_from_value,
)
from repro.trace.trace import Trace, ThreadView, TraceError
from repro.trace.columnar import HAVE_NUMPY, NONE_SENTINEL, StringTable, TraceColumns
from repro.trace.order import (
    happened_before_pairs,
    sync_partial_order,
    verify_causality,
    verify_feasible,
    CausalityViolation,
)
from repro.trace.io import write_trace, read_trace
from repro.trace.stream import (
    ChunkReader,
    stream_time_based,
    stream_trace_stats,
    stream_validate,
)
from repro.trace.slice import FileSliceResult, slice_file, slice_trace
from repro.trace.query import Predicate, QueryError, QueryResult, parse_where, run_query

__all__ = [
    "FileSliceResult",
    "slice_file",
    "slice_trace",
    "Predicate",
    "QueryError",
    "QueryResult",
    "parse_where",
    "run_query",
    "ChunkReader",
    "stream_time_based",
    "stream_trace_stats",
    "stream_validate",
    "EventKind",
    "TraceEvent",
    "SYNC_KINDS",
    "KIND_LIST",
    "KIND_CODE",
    "is_sync_kind",
    "kind_from_value",
    "HAVE_NUMPY",
    "NONE_SENTINEL",
    "StringTable",
    "TraceColumns",
    "Trace",
    "ThreadView",
    "TraceError",
    "happened_before_pairs",
    "sync_partial_order",
    "verify_causality",
    "verify_feasible",
    "CausalityViolation",
    "write_trace",
    "read_trace",
]
