"""Column codecs for the chunked packed trace format (``.rpt`` v3).

One column chunk travels through a three-stage pipeline::

    int64 values --delta?--> int64 deltas --zigzag--> uint64 --varint--> bytes
                                                               --compress-->

* **delta** (monotone-ish columns: ``time``/``seq``): wrapping uint64
  differences, first value kept absolute.  Deltas in these traces are
  tiny and highly repetitive, which is what makes the later stages pay.
* **zigzag** maps signed deltas to small unsigned ints
  (``0,-1,1,-2,... -> 0,1,2,3,...``) so varint length tracks magnitude,
  not sign.
* **varint** is LEB128: 7 value bits per byte, high bit = continuation.
  Both directions are vectorized over numpy byte arrays — at most ten
  masked passes, one per varint byte position, never a per-value Python
  loop.
* **compress** is stdlib ``zlib`` by default; ``zstd`` is used when the
  ``zstandard`` package is importable, ``none`` stores the varint bytes
  raw.  The codec name is recorded in the file header, so readers never
  guess.

All arithmetic is modular over uint64 (numpy wraps unsigned silently),
so every int64 value round-trips exactly — including ``NONE_SENTINEL``
(int64 min) and both ``OPTIONAL_MIN``/``OPTIONAL_MAX`` extremes; the
hypothesis suite in ``tests/property/test_codec_roundtrip.py`` pins this.
"""

from __future__ import annotations

import zlib

from repro.trace import _native_codec, columnar as _columnar
from repro.trace.trace import TraceError

try:  # pragma: no cover - optional accelerator, absent in the base image
    import zstandard as _zstandard

    HAVE_ZSTD = True
except ImportError:  # pragma: no cover - the stdlib path is the default
    _zstandard = None  # type: ignore[assignment]
    HAVE_ZSTD = False

#: Compression codecs accepted by :func:`compress`/:func:`decompress`.
COMPRESSORS = ("zlib", "zstd", "none")

#: Per-column encodings.  ``delta`` for monotone-ish columns, ``raw``
#: where values are small already; the writer measures both per chunk
#: (:func:`choose_encoding`) except for the always-delta columns below.
ENCODINGS = ("delta", "raw")

#: Columns the v3 writer always delta-encodes (monotone by construction).
DELTA_COLUMNS = frozenset({"time", "seq"})

#: Default zlib/zstd compression level for chunk payloads.
DEFAULT_LEVEL = 6


class CodecError(TraceError):
    """A chunk payload could not be decoded (damage, not truncation)."""


def default_compressor() -> str:
    """``zstd`` when the optional package is importable, else ``zlib``."""
    return "zstd" if HAVE_ZSTD else "zlib"


# ----------------------------------------------------------------- zigzag
def zigzag_encode(values):
    """int64 array -> uint64 array, small magnitudes -> small values."""
    np = _columnar.np
    v = np.ascontiguousarray(values, dtype=np.int64)
    return (v.view(np.uint64) << np.uint64(1)) ^ (v >> np.int64(63)).view(
        np.uint64
    )


def zigzag_decode(encoded):
    """Inverse of :func:`zigzag_encode` (uint64 array -> int64 array)."""
    np = _columnar.np
    u = np.ascontiguousarray(encoded, dtype=np.uint64)
    return ((u >> np.uint64(1)) ^ (np.uint64(0) - (u & np.uint64(1)))).view(
        np.int64
    )


# ------------------------------------------------------------------ delta
def delta_encode(values):
    """int64 array -> int64 deltas (first value absolute, wrapping).

    Differences are taken modulo 2**64, so consecutive values anywhere in
    the int64 range (including a jump from ``OPTIONAL_MAX`` down to
    ``NONE_SENTINEL``) produce a well-defined delta that
    :func:`delta_decode`'s wrapping cumulative sum undoes exactly.
    """
    np = _columnar.np
    v = np.ascontiguousarray(values, dtype=np.int64)
    if len(v) == 0:
        return v
    u = v.view(np.uint64)
    out = np.empty(len(v), dtype=np.uint64)
    out[0] = u[0]
    np.subtract(u[1:], u[:-1], out=out[1:])
    return out.view(np.int64)


def delta_decode(deltas):
    """Inverse of :func:`delta_encode` (wrapping cumulative sum)."""
    np = _columnar.np
    d = np.ascontiguousarray(deltas, dtype=np.int64)
    if len(d) == 0:
        return d
    return np.cumsum(d.view(np.uint64), dtype=np.uint64).view(np.int64)


# ----------------------------------------------------------------- varint
def varint_encode(values) -> bytes:
    """uint64 array -> LEB128 byte stream (vectorized).

    Byte lengths come from nine threshold comparisons; the payload is
    then filled position-by-position (at most ten masked scatter passes).
    """
    np = _columnar.np
    u = np.ascontiguousarray(values, dtype=np.uint64)
    n = len(u)
    if n == 0:
        return b""
    nbytes = np.ones(n, dtype=np.int64)
    for k in range(1, 10):
        nbytes += u >= np.uint64(1 << (7 * k))
    ends = np.cumsum(nbytes)
    starts = ends - nbytes
    out = np.empty(int(ends[-1]), dtype=np.uint8)
    seven_f = np.uint64(0x7F)
    for j in range(10):
        mask = nbytes > j
        if not mask.any():
            break
        byte = ((u[mask] >> np.uint64(7 * j)) & seven_f).astype(np.uint8)
        cont = (nbytes[mask] - 1 > j).astype(np.uint8) << np.uint8(7)
        out[starts[mask] + j] = byte | cont
    return out.tobytes()


def varint_decode(buf: bytes, count: int):
    """LEB128 byte stream -> uint64 array of exactly ``count`` values.

    Vectorized: terminal bytes (high bit clear) delimit values, then one
    masked gather pass per byte position accumulates the payload bits.
    Streams whose varints are all one byte — the dominant case for
    delta-encoded trace columns — decode in a single ``astype``; only the
    values still carrying a continuation bit stay in each later pass.
    Anything malformed — wrong value count, trailing bytes, an overlong
    varint — raises :class:`CodecError`.
    """
    np = _columnar.np
    b = np.frombuffer(buf, dtype=np.uint8)
    if count == 0:
        if len(b):
            raise CodecError(f"varint stream has {len(b)} trailing byte(s)")
        return np.empty(0, dtype=np.uint64)
    term = b < 0x80
    n_term = int(term.sum())
    if n_term != count:
        raise CodecError(
            f"varint stream holds {n_term} value(s), expected {count}"
        )
    if n_term == len(b):  # all one-byte varints: the bytes ARE the values
        return b.astype(np.uint64)
    extra = len(b) - count  # continuation bytes across the whole stream
    if extra <= 512:
        # Almost every varint is one byte (e.g. a delta column whose
        # first value is absolute): decode as one-byte values, then
        # reassemble the few multi-byte ones in a scalar loop.
        if term[-1] != True:  # noqa: E712 - numpy bool
            raise CodecError("varint stream has bytes after the final value")
        values = b[term].astype(np.uint64)
        cont = np.flatnonzero(~term).tolist()
        i = 0
        while i < len(cont):
            j = i
            while j + 1 < len(cont) and cont[j + 1] == cont[j] + 1:
                j += 1
            start, end = cont[i], cont[j] + 1  # bytes start..end, end terminal
            if end - start + 1 > 10:
                raise CodecError("overlong varint (more than 10 bytes)")
            v = 0
            for k, p in enumerate(range(start, end + 1)):
                v |= (int(b[p]) & 0x7F) << (7 * k)
            # A 10-byte varint can set bits past 63; wrap mod 2**64 like
            # the vectorized path (numpy shifts discard high bits).
            values[start - i] = v & 0xFFFFFFFFFFFFFFFF  # rank among terminals
            i = j + 1
        return values
    ends = np.flatnonzero(term)
    if int(ends[-1]) != len(b) - 1:
        raise CodecError("varint stream has bytes after the final value")
    starts = np.empty(count, dtype=np.int64)
    starts[0] = 0
    starts[1:] = ends[:-1] + 1
    first = b[starts]
    values = (first & np.uint8(0x7F)).astype(np.uint64)
    active = np.flatnonzero(first >= 0x80)
    pos = starts[active] + 1
    seven_f = np.uint8(0x7F)
    shift = 7
    while len(active):
        if shift > 63:
            raise CodecError("overlong varint (more than 10 bytes)")
        byte = b[pos]
        values[active] |= (byte & seven_f).astype(np.uint64) << np.uint64(shift)
        cont = byte >= 0x80
        active = active[cont]
        pos = pos[cont] + 1
        shift += 7
    return values


# ----------------------------------------------------------- column codec
def varint_size(values) -> int:
    """Total LEB128 bytes the uint64 array would occupy (no encoding)."""
    np = _columnar.np
    u = np.ascontiguousarray(values, dtype=np.uint64)
    total = len(u)
    for k in range(1, 10):
        more = int((u >= np.uint64(1 << (7 * k))).sum())
        if not more:
            break
        total += more
    return total


def choose_encoding(values) -> str:
    """Smaller-footprint encoding (``delta`` vs ``raw``) for one chunk.

    The chunk descriptor records the choice per column, so the writer is
    free to measure: columns that look like ids or carry the
    ``NONE_SENTINEL`` cost 5-10 varint bytes per value raw but often
    collapse to one byte as deltas — and one-byte streams also take the
    fast decode path.  Ties go to ``raw`` (no cumsum on read).
    """
    if len(values) < 2:
        return "raw"
    raw_size = varint_size(zigzag_encode(values))
    delta_size = varint_size(zigzag_encode(delta_encode(values)))
    return "delta" if delta_size < raw_size else "raw"


def encode_column(values, encoding: str) -> bytes:
    """One int64 column chunk -> uncompressed varint payload."""
    if encoding == "delta":
        staged = delta_encode(values)
    elif encoding == "raw":
        staged = values
    else:
        raise ValueError(
            f"unknown column encoding {encoding!r}; expected one of {ENCODINGS}"
        )
    return varint_encode(zigzag_encode(staged))


def decode_column(payload: bytes, rows: int, encoding: str, out=None):
    """Inverse of :func:`encode_column`; returns an int64 array.

    ``out``, when given, must be a C-contiguous int64 array of exactly
    ``rows`` elements; the decoded column is written into it (and it is
    also the return value), which lets a chunked reader decode straight
    into a preallocated full-trace column with no per-chunk concatenate.
    When the JIT codec kernel is available the whole varint + zigzag +
    delta pipeline runs as one C pass over the payload.
    """
    np = _columnar.np
    if encoding not in ENCODINGS:
        raise ValueError(
            f"unknown column encoding {encoding!r}; expected one of {ENCODINGS}"
        )
    target = out if out is not None else np.empty(rows, dtype=np.int64)
    if _native_codec.decode_into(payload, rows, encoding, target):
        return target
    # Pure-numpy path (also the arbiter for malformed payloads: a kernel
    # failure status re-runs this to raise the canonical CodecError).
    u = varint_decode(payload, rows)
    # In-place zigzag decode: varint_decode always returns a fresh array.
    sign = u & np.uint64(1)
    u >>= np.uint64(1)
    u ^= np.uint64(0) - sign
    staged = u.view(np.int64)
    if encoding == "delta":
        staged = delta_decode(staged)
    if out is None:
        return staged
    np.copyto(out, staged)
    return out


# ------------------------------------------------------------ compression
def compress(data: bytes, codec: str, level: int = DEFAULT_LEVEL) -> bytes:
    if codec == "zlib":
        return zlib.compress(data, level)
    if codec == "zstd":
        if not HAVE_ZSTD:
            raise CodecError("zstd codec requested but zstandard is not installed")
        return _zstandard.ZstdCompressor(level=level).compress(data)
    if codec == "none":
        return data
    raise ValueError(
        f"unknown compression codec {codec!r}; expected one of {COMPRESSORS}"
    )


def decompress(data: bytes, codec: str, size_hint: int = 0) -> bytes:
    """Undo :func:`compress`.  ``size_hint`` is an upper bound on the
    decompressed size (0 = unknown): passing it lets zlib allocate the
    output buffer once instead of geometrically growing it, which on a
    ~1 MB column payload removes two full extra copies of the output.
    """
    try:
        if codec == "zlib":
            if size_hint > 0:
                return zlib.decompress(data, bufsize=size_hint)
            return zlib.decompress(data)
        if codec == "zstd":
            if not HAVE_ZSTD:
                raise CodecError(
                    "trace was written with zstd but zstandard is not installed"
                )
            return _zstandard.ZstdDecompressor().decompress(data)
    except CodecError:
        raise
    except Exception as exc:  # zlib.error / ZstdError: damage, not truncation
        raise CodecError(f"corrupt {codec} chunk payload: {exc}") from exc
    if codec == "none":
        return data
    raise CodecError(
        f"unknown compression codec {codec!r}; expected one of {COMPRESSORS}"
    )
