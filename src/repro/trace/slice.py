"""Causal slicing of event traces.

Given a target event, the *backward causal slice* is the sub-trace of
events the target transitively depends on through (a) per-thread program
order and (b) synchronization dependences — exactly the relation the
paper's conservative approximation preserves (§4.1), so re-analyzing the
slice reproduces the target's behaviour.  This is the trace analogue of
program slicing over event traces (Smith & Korel; see PAPERS.md) and is
what :mod:`repro.audit.differential` uses to minimize divergence
witnesses without the bounded delta-debugging size cliff.

Dependence rules
----------------
Program order makes the slice *per-thread prefix closed*: including an
event includes everything earlier on its thread.  A slice is therefore
fully described by one frontier position per thread, and the sync rules
only ever move frontiers:

* ``awaitE(A, i)`` depends on the first ``advance(A, i)``;
* each ``barrier_exit`` of a generation depends on every
  ``barrier_arrive`` of the same (barrier, generation);
* each dynamic lock use chains ``lockReq -> lockAcq -> lockRel``, and
  the k+1-th ``lockAcq`` of a lock depends on the release of the k-th
  acquisition (mutual exclusion, in the trace's own acquisition order);
* each semaphore use chains ``semReq -> semAcq -> semSig``; each
  ``semAcq`` additionally depends on the latest earlier ``semSig`` of
  the same semaphore, and signals of one semaphore are chained in trace
  order.

The semaphore rule deliberately over-approximates the capacity rule of
:func:`repro.trace.order.sync_partial_order` (the k-th grant consumes
the (k - capacity)-th signal): grant *ranks* change when a trace is
subset, so a capacity-based slice of a slice could differ from the
slice.  Chaining signals and depending on the latest earlier one is (a)
a superset of the capacity edge, hence still a sound conservative
slice, and (b) stable under taking subsets, which gives the property
tests their idempotence guarantee: ``slice(slice(T, e), e) ==
slice(T, e)``.

Three implementations share these rules event-for-event:

* :func:`slice_event_indices` — the pure-Python reference over
  :class:`~repro.trace.events.TraceEvent` objects (works without numpy);
* :func:`slice_rows` — vectorized over :class:`TraceColumns` int64
  columns (argsort/searchsorted matching, one compact pass over the
  sync rows only);
* :func:`slice_file` — two-pass bounded-memory streaming over a ``.rpt``
  v3 :class:`~repro.trace.stream.ChunkReader`: pass 1 decodes only the
  columns each chunk needs (``thread`` always; sync identity columns
  only for chunks whose ``kind`` stats admit sync events) and collects
  a compact sync table, pass 2 re-reads only chunks at or before the
  slice frontier and keeps only selected rows.  Chunks past the
  frontier are never read (counted as ``slice.chunks_pruned``).

:func:`slice_trace` is the in-memory front door used by the CLI and the
audit witness minimizer.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Sequence, Union

from repro.obs import core as obs
from repro.trace import columnar as _columnar
from repro.trace.columnar import NONE_SENTINEL, TraceColumns
from repro.trace.events import KIND_CODE, SYNC_KINDS, EventKind, TraceEvent
from repro.trace.trace import Trace, TraceError

#: Sync kinds occupy a contiguous suffix of the kind-code space, so one
#: comparison classifies a row (and a chunk's kind ``max`` bounds whether
#: it can hold sync events at all).
SYNC_CODE_MIN = KIND_CODE[EventKind.ADVANCE]
assert all(
    (KIND_CODE[k] >= SYNC_CODE_MIN) == (k in SYNC_KINDS) for k in EventKind
), "sync kinds are no longer a contiguous code suffix; fix the fast paths"


# ------------------------------------------------------- object reference
def slice_event_indices(
    events: Sequence[TraceEvent], target: int
) -> list[int]:
    """Backward causal slice of ``events``: sorted indices, target included.

    ``events`` must be in the trace's storage (total) order; ``target``
    is a position in that sequence.  This is the pure-Python reference
    implementation — :func:`slice_rows` must select the identical index
    set (property-tested).
    """
    n = len(events)
    if not 0 <= target < n:
        raise TraceError(
            f"slice target index {target} out of range for {n} events"
        )
    # Program order: remember each event's same-thread predecessor.
    prev_in_thread: list[Optional[int]] = [None] * n
    last_on: dict[int, int] = {}
    for i, e in enumerate(events):
        prev_in_thread[i] = last_on.get(e.thread)
        last_on[e.thread] = i
    deps: dict[int, list[int]] = {}

    def add(src: Optional[int], dst: int) -> None:
        if src is not None:
            deps.setdefault(dst, []).append(src)

    # advance(A, i) -> awaitE(A, i): first advance with the key wins.
    first_advance: dict[tuple, int] = {}
    first_lock: dict[tuple, int] = {}
    first_sem: dict[tuple, int] = {}
    lock_acqs: dict[Optional[str], list[int]] = {}
    sem_sigs: dict[Optional[str], list[int]] = {}
    sem_acqs: dict[Optional[str], list[int]] = {}
    barrier_gens: dict[tuple, dict[str, list[int]]] = {}
    _LOCK_ROLE = {
        EventKind.LOCK_REQ: "req",
        EventKind.LOCK_ACQ: "acq",
        EventKind.LOCK_REL: "rel",
    }
    _SEM_ROLE = {
        EventKind.SEM_REQ: "req",
        EventKind.SEM_ACQ: "acq",
        EventKind.SEM_SIG: "sig",
    }
    for i, e in enumerate(events):
        kind = e.kind
        has_key = e.sync_var is not None and e.sync_index is not None
        if kind is EventKind.ADVANCE and has_key:
            first_advance.setdefault((e.sync_var, e.sync_index), i)
        elif kind in (EventKind.BARRIER_ARRIVE, EventKind.BARRIER_EXIT):
            gen_key = (
                e.sync_var,
                e.sync_index if e.sync_index is not None else 0,
            )
            bucket = barrier_gens.setdefault(
                gen_key, {"arrive": [], "exit": []}
            )
            side = "arrive" if kind is EventKind.BARRIER_ARRIVE else "exit"
            bucket[side].append(i)
        elif kind in _LOCK_ROLE:
            if has_key:
                first_lock.setdefault(
                    (_LOCK_ROLE[kind], e.sync_var, e.sync_index), i
                )
            if kind is EventKind.LOCK_ACQ and has_key:
                lock_acqs.setdefault(e.sync_var, []).append(i)
        elif kind in _SEM_ROLE:
            if has_key:
                first_sem.setdefault(
                    (_SEM_ROLE[kind], e.sync_var, e.sync_index), i
                )
            if kind is EventKind.SEM_SIG and e.sync_var is not None:
                sem_sigs.setdefault(e.sync_var, []).append(i)
            elif kind is EventKind.SEM_ACQ and e.sync_var is not None:
                sem_acqs.setdefault(e.sync_var, []).append(i)
    for i, e in enumerate(events):
        has_key = e.sync_var is not None and e.sync_index is not None
        if not has_key:
            continue
        key = (e.sync_var, e.sync_index)
        if e.kind is EventKind.AWAIT_E:
            add(first_advance.get(key), i)
        elif e.kind is EventKind.LOCK_ACQ:
            add(first_lock.get(("req",) + key), i)
        elif e.kind is EventKind.LOCK_REL:
            add(first_lock.get(("acq",) + key), i)
        elif e.kind is EventKind.SEM_ACQ:
            add(first_sem.get(("req",) + key), i)
        elif e.kind is EventKind.SEM_SIG:
            add(first_sem.get(("acq",) + key), i)
    for bucket in barrier_gens.values():
        for exit_i in bucket["exit"]:
            for arrive_i in bucket["arrive"]:
                add(arrive_i, exit_i)
    for acqs in lock_acqs.values():
        for prev_acq, next_acq in zip(acqs, acqs[1:]):
            prev = events[prev_acq]
            if prev.sync_index is not None:
                add(
                    first_lock.get(("rel", prev.sync_var, prev.sync_index)),
                    next_acq,
                )
    import bisect

    for var, sigs in sem_sigs.items():
        for prev_sig, next_sig in zip(sigs, sigs[1:]):
            add(prev_sig, next_sig)
        for acq_i in sem_acqs.get(var, ()):
            at = bisect.bisect_left(sigs, acq_i)
            if at > 0:
                add(sigs[at - 1], acq_i)

    included = [False] * n
    stack = [target]
    while stack:
        i = stack.pop()
        if included[i]:
            continue
        included[i] = True
        p = prev_in_thread[i]
        if p is not None and not included[p]:
            stack.append(p)
        for j in deps.get(i, ()):
            if not included[j]:
                stack.append(j)
    return [i for i in range(n) if included[i]]


# ----------------------------------------------------- vectorized matching
def _concat_ranges(np, lo, hi):
    """Concatenation of ``arange(lo[i], hi[i])`` for every i (vectorized)."""
    counts = hi - lo
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    reps = np.repeat(np.cumsum(counts) - counts, counts)
    return np.arange(total, dtype=np.int64) - reps + np.repeat(lo, counts)


def _match_first(np, producers, consumers, svar, sidx):
    """(src, dst): first producer sharing each consumer's sync key.

    ``producers``/``consumers`` are compact indices in ascending row
    order; rows without a full (sync_var, sync_index) identity never
    match (mirrors the object path's ``has_key`` guard).
    """
    empty = np.empty(0, dtype=np.int64)
    keyed_p = producers[
        (svar[producers] >= 0) & (sidx[producers] != NONE_SENTINEL)
    ]
    keyed_c = consumers[
        (svar[consumers] >= 0) & (sidx[consumers] != NONE_SENTINEL)
    ]
    if len(keyed_p) == 0 or len(keyed_c) == 0:
        return empty, empty
    src_parts, dst_parts = [], []
    for var in np.unique(svar[keyed_c]).tolist():
        prod = keyed_p[svar[keyed_p] == var]
        cons = keyed_c[svar[keyed_c] == var]
        if len(prod) == 0:
            continue
        # Stable sort by key keeps ascending row order within equal keys,
        # so searchsorted-left lands on the *first* matching producer.
        order = np.argsort(sidx[prod], kind="stable")
        keys = sidx[prod][order]
        at = np.searchsorted(keys, sidx[cons], side="left")
        hit = at < len(keys)
        at = np.minimum(at, len(keys) - 1)
        hit &= keys[at] == sidx[cons]
        if hit.any():
            src_parts.append(prod[order][at[hit]])
            dst_parts.append(cons[hit])
    if not src_parts:
        return empty, empty
    return np.concatenate(src_parts), np.concatenate(dst_parts)


def _sync_edges(np, kind, svar, sidx):
    """All sync-dependence edges over a compact sync-row table.

    ``kind``/``svar``/``sidx`` are aligned arrays covering only the sync
    rows of a trace, in ascending row order; the returned ``(src, dst)``
    arrays hold compact indices (dst depends on src).  The rules are the
    module-level ones — byte-for-byte the object path's.
    """
    empty = np.empty(0, dtype=np.int64)
    src_parts, dst_parts = [], []

    def add(src, dst):
        if len(src):
            src_parts.append(src)
            dst_parts.append(dst)

    def of(kind_: EventKind):
        return np.flatnonzero(kind == KIND_CODE[kind_])

    add(*_match_first(np, of(EventKind.ADVANCE), of(EventKind.AWAIT_E),
                      svar, sidx))

    arrive, exit_ = of(EventKind.BARRIER_ARRIVE), of(EventKind.BARRIER_EXIT)
    if len(arrive) and len(exit_):
        gen = np.where(sidx == NONE_SENTINEL, 0, sidx)
        for var in np.unique(svar[exit_]).tolist():
            arr_v = arrive[svar[arrive] == var]
            ext_v = exit_[svar[exit_] == var]
            if len(arr_v) == 0 or len(ext_v) == 0:
                continue
            order = np.argsort(gen[arr_v], kind="stable")
            arr_s = arr_v[order]
            gens_s = gen[arr_v][order]
            lo = np.searchsorted(gens_s, gen[ext_v], side="left")
            hi = np.searchsorted(gens_s, gen[ext_v], side="right")
            add(arr_s[_concat_ranges(np, lo, hi)],
                np.repeat(ext_v, hi - lo))

    req, acq, rel = (of(EventKind.LOCK_REQ), of(EventKind.LOCK_ACQ),
                     of(EventKind.LOCK_REL))
    add(*_match_first(np, req, acq, svar, sidx))
    add(*_match_first(np, acq, rel, svar, sidx))
    keyed_acq = acq[(svar[acq] >= 0) & (sidx[acq] != NONE_SENTINEL)]
    for var in np.unique(svar[keyed_acq]).tolist():
        acq_v = keyed_acq[svar[keyed_acq] == var]
        if len(acq_v) < 2:
            continue
        # rel of the k-th acquisition -> the (k+1)-th acquisition.
        src, dst = _match_first(np, rel, acq_v[:-1], svar, sidx)
        remap = np.searchsorted(acq_v[:-1], dst)
        add(src, acq_v[1:][remap])

    req, acq, sig = (of(EventKind.SEM_REQ), of(EventKind.SEM_ACQ),
                     of(EventKind.SEM_SIG))
    add(*_match_first(np, req, acq, svar, sidx))
    add(*_match_first(np, acq, sig, svar, sidx))
    named_sig = sig[svar[sig] >= 0]
    named_acq = acq[svar[acq] >= 0]
    for var in np.unique(svar[named_sig]).tolist():
        sig_v = named_sig[svar[named_sig] == var]
        add(sig_v[:-1], sig_v[1:])
        acq_v = named_acq[svar[named_acq] == var]
        if len(acq_v):
            at = np.searchsorted(sig_v, acq_v, side="left") - 1
            hit = at >= 0
            add(sig_v[at[hit]], acq_v[hit])

    if not src_parts:
        return empty, empty
    return np.concatenate(src_parts), np.concatenate(dst_parts)


def _closure(np, thread, pos, rows, src, dst, seed):
    """Per-thread slice frontier: thread -> (max pos included, its row).

    ``seed`` is the target's ``(thread, pos, row)``.  Edges are replayed
    in descending destination-row order: on a causally-ordered trace
    every dependence points backward, so one pass cascades chains fully;
    the loop repeats until a pass makes no change so forward-pointing
    edges in damaged traces still converge.
    """
    frontier: dict[int, tuple[int, int]] = {seed[0]: (seed[1], seed[2])}
    if len(src) == 0:
        return frontier
    order = np.argsort(rows[dst], kind="stable")[::-1]
    src_l = src[order].tolist()
    dst_l = dst[order].tolist()
    thread_l = thread.tolist()
    pos_l = pos.tolist()
    rows_l = rows.tolist()
    changed = True
    while changed:
        changed = False
        for s, d in zip(src_l, dst_l):
            at = frontier.get(thread_l[d])
            if at is None or pos_l[d] > at[0]:
                continue  # destination not in the slice: edge inert
            have = frontier.get(thread_l[s])
            if have is None or pos_l[s] > have[0]:
                frontier[thread_l[s]] = (pos_l[s], rows_l[s])
                changed = True
    return frontier


def _thread_positions(np, cols: TraceColumns):
    """(dense per-row thread rank arrays): row -> position on its thread."""
    pos = np.empty(len(cols), dtype=np.int64)
    ids, groups = cols.thread_order()
    for idx in groups:
        pos[idx] = np.arange(len(idx), dtype=np.int64)
    return pos


def slice_rows(cols: TraceColumns, target_row: int):
    """Backward causal slice over columns: ascending row-index array.

    Vectorized equivalent of :func:`slice_event_indices` — identical
    selection by construction of the shared rule set.
    """
    _columnar._require_numpy()
    np = _columnar.np
    n = len(cols)
    if not 0 <= target_row < n:
        raise TraceError(
            f"slice target index {target_row} out of range for {n} events"
        )
    with obs.span("trace.slice", backend="columnar", n_events=n):
        pos = _thread_positions(np, cols)
        sync_rows = np.flatnonzero(cols.kind >= SYNC_CODE_MIN)
        src, dst = _sync_edges(
            np,
            cols.kind[sync_rows],
            cols.sync_var[sync_rows],
            cols.sync_index[sync_rows],
        )
        frontier = _closure(
            np,
            cols.thread[sync_rows],
            pos[sync_rows],
            sync_rows,
            src,
            dst,
            (int(cols.thread[target_row]), int(pos[target_row]), target_row),
        )
        keep = np.zeros(n, dtype=bool)
        for tid, (limit, _row) in frontier.items():
            keep |= (cols.thread == tid) & (pos <= limit)
        return np.flatnonzero(keep)


# ------------------------------------------------------------- front door
def _resolve_target(n: int, seqs, seq: Optional[int], index: Optional[int]):
    """Target row from exactly one of ``seq`` (trace seq) / ``index`` (row)."""
    if (seq is None) == (index is None):
        raise TraceError("pass exactly one of seq= or index= to slice")
    if index is not None:
        row = index if index >= 0 else n + index
        if not 0 <= row < n:
            raise TraceError(
                f"slice target index {index} out of range for {n} events"
            )
        return row
    for row, s in enumerate(seqs):
        if s == seq:
            return row
    raise TraceError(f"no event with seq {seq} in trace of {n} events")


def slice_trace(
    trace: Trace,
    *,
    seq: Optional[int] = None,
    index: Optional[int] = None,
    backend: str = "auto",
) -> Trace:
    """The backward causal slice of ``trace`` as a new :class:`Trace`.

    The target is named by ``seq`` (the event's trace sequence number —
    how audit findings name diverging events) or ``index`` (position in
    total order, negatives Python-style).  Sliced events keep their
    original ``seq`` numbers so analysis results on the slice can be
    compared seq-for-seq against the full trace; ``meta["slice"]``
    records the target and source size.

    ``backend`` is ``"auto"`` (columnar when numpy is present),
    ``"columnar"`` or ``"object"``; both produce identical slices.
    """
    if backend == "auto":
        backend = "columnar" if _columnar.HAVE_NUMPY else "object"
    n = len(trace)
    meta = dict(trace.meta)
    if backend == "columnar":
        _columnar._require_numpy()
        np = _columnar.np
        if (seq is None) == (index is None):
            raise TraceError("pass exactly one of seq= or index= to slice")
        cols = trace.columns
        if index is not None:
            row = index if index >= 0 else n + index
            if not 0 <= row < n:
                raise TraceError(
                    f"slice target index {index} out of range for {n} events"
                )
        else:
            hits = np.flatnonzero(cols.seq == seq)
            if len(hits) == 0:
                raise TraceError(
                    f"no event with seq {seq} in trace of {n} events"
                )
            row = int(hits[0])
        rows = slice_rows(cols, row)
        meta["slice"] = {
            "target_seq": int(cols.seq[row]),
            "target_index": int(row),
            "source_events": n,
        }
        return Trace.from_columns(cols.take(rows), meta=meta)
    if backend != "object":
        raise TraceError(f"unknown slice backend {backend!r}")
    events = trace.events
    row = _resolve_target(
        n, (e.seq for e in events), seq=seq, index=index
    )
    with obs.span("trace.slice", backend="object", n_events=n):
        kept = slice_event_indices(events, row)
    meta["slice"] = {
        "target_seq": int(events[row].seq),
        "target_index": int(row),
        "source_events": n,
    }
    return Trace([events[i] for i in kept], meta=meta)


# --------------------------------------------------------- streaming slice
class FileSliceResult:
    """Outcome of :func:`slice_file`.

    ``trace`` is the slice; the counters describe how much of the file
    the two passes actually touched (``chunks_pruned`` chunks were never
    read in pass 2 because they lie entirely past the slice frontier).
    """

    __slots__ = (
        "trace", "n_source_events", "n_chunks",
        "chunks_decoded", "chunks_pruned",
    )

    def __init__(self, trace, n_source_events, n_chunks,
                 chunks_decoded, chunks_pruned):
        self.trace = trace
        self.n_source_events = n_source_events
        self.n_chunks = n_chunks
        self.chunks_decoded = chunks_decoded
        self.chunks_pruned = chunks_pruned


def _chunk_positions(np, thread, running: dict) -> "object":
    """Global per-thread positions for one chunk's ``thread`` column.

    ``running`` carries the events-seen-so-far count per thread across
    chunks; it is updated in place.
    """
    order = np.argsort(thread, kind="stable")
    sorted_threads = thread[order]
    pos = np.empty(len(thread), dtype=np.int64)
    if len(sorted_threads) == 0:
        return pos
    boundaries = np.flatnonzero(np.diff(sorted_threads)) + 1
    groups = np.split(order, boundaries)
    ids = [int(sorted_threads[0])] + [
        int(sorted_threads[b]) for b in boundaries
    ]
    for tid, idx in zip(ids, groups):
        base = running.get(tid, 0)
        pos[idx] = np.arange(base, base + len(idx), dtype=np.int64)
        running[tid] = base + len(idx)
    return pos


def _chunk_may_hold_seq(info: dict, seq: int) -> bool:
    bounds = info.get("cols", {}).get("seq")
    if not bounds:
        return True
    lo, hi = bounds.get("min"), bounds.get("max")
    if lo is None or hi is None:
        return True
    return lo <= seq <= hi


def slice_file(
    path: Union[str, Path],
    *,
    seq: Optional[int] = None,
    index: Optional[int] = None,
) -> FileSliceResult:
    """Backward causal slice of a chunked ``.rpt`` v3 file.

    Never materializes the full trace: pass 1 streams a column-projected
    decode of each chunk (``thread`` always; ``kind``/``sync_var``/
    ``sync_index`` only when the chunk's ``kind`` stats admit sync
    events; ``seq`` only while the target is still being located) and
    collects the compact sync table; pass 2 re-reads only chunks up to
    the slice frontier, masks rows by a thread-only decode, and decodes
    the remaining columns just for chunks that contribute rows.  Memory
    is O(sync events + slice size), not O(trace).
    """
    from repro.trace import binio as _binio
    from repro.trace.stream import ChunkReader

    _columnar._require_numpy()
    np = _columnar.np
    if (seq is None) == (index is None):
        raise TraceError("pass exactly one of seq= or index= to slice")
    with ChunkReader(path) as reader, obs.span(
        "trace.slice", backend="streaming-file", n_events=reader.n_events
    ):
        n = reader.n_events
        n_chunks = reader.n_chunks
        target_row = None
        if index is not None:
            target_row = index if index >= 0 else n + index
            if not 0 <= target_row < n:
                raise TraceError(
                    f"slice target index {index} out of range for {n} events"
                )
        # ---- pass 1: locate the target, collect the compact sync table
        running: dict[int, int] = {}
        seed = None
        sync_parts: list[tuple] = []
        for i, info in enumerate(reader.chunk_index):
            start = int(info["start_row"])
            rows = int(info["rows"])
            kind_stats = info.get("cols", {}).get("kind", {})
            kind_max = kind_stats.get("max")
            has_sync = kind_max is None or int(kind_max) >= SYNC_CODE_MIN
            hunting = seed is None and (
                (target_row is not None and start <= target_row < start + rows)
                or (seq is not None and _chunk_may_hold_seq(info, seq))
            )
            need = {"thread"}
            if has_sync:
                need |= {"kind", "sync_var", "sync_index"}
            if hunting and seq is not None:
                need.add("seq")
            arrays = reader.read_chunk_arrays(i, columns=sorted(need))
            thread = arrays["thread"]
            pos = _chunk_positions(np, thread, running)
            if hunting:
                local = None
                if target_row is not None:
                    local = target_row - start
                else:
                    hits = np.flatnonzero(arrays["seq"] == seq)
                    if len(hits):
                        local = int(hits[0])
                if local is not None:
                    seed = (
                        int(thread[local]), int(pos[local]), start + local
                    )
            if has_sync:
                kind = arrays["kind"]
                at = np.flatnonzero(kind >= SYNC_CODE_MIN)
                if len(at):
                    sync_parts.append((
                        start + at,
                        kind[at],
                        thread[at],
                        pos[at],
                        arrays["sync_var"][at],
                        arrays["sync_index"][at],
                    ))
        if seed is None:
            raise TraceError(
                f"no event with seq {seq} in trace of {n} events"
            )
        if sync_parts:
            s_rows, s_kind, s_thread, s_pos, s_svar, s_sidx = (
                np.concatenate([p[j] for p in sync_parts])
                for j in range(6)
            )
        else:
            s_rows = s_kind = s_thread = s_pos = s_svar = s_sidx = (
                np.empty(0, dtype=np.int64)
            )
        src, dst = _sync_edges(np, s_kind, s_svar, s_sidx)
        frontier = _closure(np, s_thread, s_pos, s_rows, src, dst, seed)
        max_row = max(row for _pos, row in frontier.values())
        # ---- pass 2: collect selected rows, pruning past the frontier
        running2: dict[int, int] = {}
        kept: list[dict] = []
        decoded = 0
        pruned = 0
        target_seq = int(seq) if seq is not None else None
        for i, info in enumerate(reader.chunk_index):
            start = int(info["start_row"])
            if start > max_row:
                pruned = n_chunks - i
                obs.count("slice.chunks_pruned", pruned)
                break
            blob = reader.read_blob(i)
            thread = _binio.decode_chunk(
                blob, reader.compressor, columns=("thread",)
            )["thread"]
            pos = _chunk_positions(np, thread, running2)
            mask = np.zeros(len(thread), dtype=bool)
            for tid, (limit, _row) in frontier.items():
                mask |= (thread == tid) & (pos <= limit)
            if not mask.any():
                continue
            rest = _binio.decode_chunk(
                blob, reader.compressor,
                columns=[c for c in _columnar.COLUMN_NAMES if c != "thread"],
            )
            decoded += 1
            at = np.flatnonzero(mask)
            selection = {"thread": thread[at], "__rows": start + at}
            for name in _columnar.COLUMN_NAMES:
                if name != "thread":
                    selection[name] = rest[name][at]
            if target_seq is None and start <= seed[2] < start + len(thread):
                # The target row is always selected (it sits at or below
                # its own thread frontier); recover its seq in passing.
                hit = np.flatnonzero(selection["__rows"] == seed[2])
                if len(hit):
                    target_seq = int(selection["seq"][hit[0]])
            kept.append(selection)
        if target_seq is None:
            raise TraceError(
                "slice target row was not selected (internal error)"
            )
        arrays = {
            name: (
                np.concatenate([part[name] for part in kept])
                if kept else np.empty(0, dtype=np.int64)
            )
            for name in _columnar.COLUMN_NAMES
        }
        cols = TraceColumns(
            sync_var_table=reader.sync_var_table,
            label_table=reader.label_table,
            **arrays,
        )
        meta = dict(reader.meta)
        meta["slice"] = {
            "target_seq": target_seq,
            "target_index": int(seed[2]),
            "source_events": n,
        }
        trace = Trace.from_columns(cols, meta=meta)
        return FileSliceResult(trace, n, n_chunks, decoded, pruned)
