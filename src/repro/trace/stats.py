"""Descriptive statistics over traces.

Tooling-level summaries (no perturbation semantics): event counts by kind
and thread, event rates, instrumentation overhead totals, and
synchronization inventories.  Used by the ``repro-trace`` command-line
tool and handy in notebooks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.trace.events import EventKind, TraceEvent, is_sync_kind
from repro.trace.trace import Trace


@dataclass(frozen=True)
class TraceStats:
    """Summary of one trace."""

    n_events: int
    n_threads: int
    duration: int
    by_kind: dict[str, int]
    by_thread: dict[int, int]
    total_overhead: int
    sync_vars: tuple[str, ...]
    locks: tuple[str, ...]
    loops: tuple[str, ...]

    @property
    def overhead_fraction(self) -> float:
        """Instrumentation overhead as a fraction of thread-time.

        Upper bound: overhead cycles divided by (duration x threads).
        """
        if self.duration <= 0 or self.n_threads == 0:
            return 0.0
        return self.total_overhead / (self.duration * self.n_threads)

    def events_per_kilocycle(self) -> float:
        if self.duration <= 0:
            return 0.0
        return 1000.0 * self.n_events / self.duration


def _columnar_stats(trace: Trace) -> TraceStats:
    """Column-at-a-time statistics: bincounts and masked uniques.

    Streams straight from the numpy columns — no :class:`TraceEvent`
    objects are materialized, so ``repro-trace stats`` on a million-event
    ``.rpt`` file runs in constant Python-object memory.
    """
    from repro.trace import columnar as _c

    np = _c.np
    cols = trace.columns
    kind_counts = np.bincount(cols.kind, minlength=len(_c.KIND_LIST))
    by_kind = {
        _c.KIND_LIST[code].value: int(count)
        for code, count in enumerate(kind_counts.tolist())
        if count
    }
    threads, thread_counts = np.unique(cols.thread, return_counts=True)
    by_thread = {
        int(t): int(c) for t, c in zip(threads.tolist(), thread_counts.tolist())
    }

    def named(mask) -> set[str]:
        idx = np.unique(cols.sync_var[mask])
        return {
            trace.columns.sync_var_table[i]
            for i in idx.tolist()
            if i >= 0 and trace.columns.sync_var_table[i]
        }

    sync_vars = named(_c.kind_code_mask(
        cols.kind, EventKind.ADVANCE, EventKind.AWAIT_B, EventKind.AWAIT_E))
    locks = named(_c.kind_code_mask(
        cols.kind, EventKind.LOCK_REQ, EventKind.LOCK_ACQ, EventKind.LOCK_REL))
    loop_labels = np.unique(
        cols.label[cols.kind == _c.KIND_CODE[EventKind.LOOP_BEGIN]]
    )
    loops = {
        "" if i < 0 else cols.label_table[i] for i in loop_labels.tolist()
    }
    return TraceStats(
        n_events=len(cols),
        n_threads=len(by_thread),
        duration=trace.duration,
        by_kind=dict(sorted(by_kind.items())),
        by_thread=by_thread,
        total_overhead=int(cols.overhead.sum()),
        sync_vars=tuple(sorted(sync_vars)),
        locks=tuple(sorted(locks)),
        loops=tuple(sorted(loops)),
    )


def trace_stats(trace: Trace) -> TraceStats:
    """Compute summary statistics for a trace.

    Columnar-backed traces (e.g. loaded from ``.rpt``) are summarized
    with vectorized column passes; object-backed traces walk the events.
    """
    if trace.has_columns:
        return _columnar_stats(trace)
    by_kind: dict[str, int] = {}
    by_thread: dict[int, int] = {}
    sync_vars: set[str] = set()
    locks: set[str] = set()
    loops: set[str] = set()
    total_overhead = 0
    for e in trace.events:
        by_kind[e.kind.value] = by_kind.get(e.kind.value, 0) + 1
        by_thread[e.thread] = by_thread.get(e.thread, 0) + 1
        total_overhead += e.overhead
        if e.kind in (EventKind.ADVANCE, EventKind.AWAIT_B, EventKind.AWAIT_E):
            if e.sync_var:
                sync_vars.add(e.sync_var)
        elif e.kind in (EventKind.LOCK_REQ, EventKind.LOCK_ACQ, EventKind.LOCK_REL):
            if e.sync_var:
                locks.add(e.sync_var)
        elif e.kind is EventKind.LOOP_BEGIN:
            loops.add(e.label)
    return TraceStats(
        n_events=len(trace),
        n_threads=len(trace.threads),
        duration=trace.duration,
        by_kind=dict(sorted(by_kind.items())),
        by_thread=dict(sorted(by_thread.items())),
        total_overhead=total_overhead,
        sync_vars=tuple(sorted(sync_vars)),
        locks=tuple(sorted(locks)),
        loops=tuple(sorted(loops)),
    )


def render_stats(stats: TraceStats, meta: Optional[dict] = None) -> str:
    """Human-readable one-page summary."""
    lines = []
    if meta:
        lines.append(
            f"program={meta.get('program', '?')} kind={meta.get('kind', '?')} "
            f"plan={meta.get('plan', '?')}"
        )
    lines.append(
        f"{stats.n_events} events on {stats.n_threads} thread(s), "
        f"{stats.duration} cycles "
        f"({stats.events_per_kilocycle():.1f} events/kcycle)"
    )
    if stats.total_overhead:
        lines.append(
            f"instrumentation overhead: {stats.total_overhead} cycles "
            f"({stats.overhead_fraction:.1%} of thread-time)"
        )
    lines.append("events by kind:")
    for kind, count in stats.by_kind.items():
        lines.append(f"  {kind:<16} {count}")
    lines.append("events by thread:")
    for thread, count in stats.by_thread.items():
        lines.append(f"  CE{thread:<3} {count}")
    if stats.loops:
        lines.append(f"loops: {', '.join(stats.loops)}")
    if stats.sync_vars:
        lines.append(f"sync variables: {', '.join(stats.sync_vars)}")
    if stats.locks:
        lines.append(f"locks: {', '.join(stats.locks)}")
    return "\n".join(lines)
