"""Struct-of-arrays trace backend.

A :class:`TraceColumns` holds one execution trace as eight parallel numpy
``int64`` columns (``time``/``thread``/``kind``/``eid``/``seq``/
``iteration``/``sync_index``/``overhead``) plus two interned string tables
(``sync_var`` and ``label``).  The layout follows the columnar-buffer
school of trace storage (LTTng-style packed records; xobjects-style
struct-of-arrays device buffers): analysis passes touch whole columns with
vectorized numpy kernels instead of walking millions of per-event Python
objects, and the packed binary trace format (:mod:`repro.trace.binio`)
serialises the buffers verbatim.

Encoding conventions
--------------------
* ``kind`` stores the integer code of the :class:`~repro.trace.events.EventKind`
  (its position in :data:`~repro.trace.events.KIND_LIST`);
* ``iteration`` and ``sync_index`` use :data:`NONE_SENTINEL` (int64 min)
  for ``None`` — both fields may legitimately be negative (DOACROSS
  prologue awaits use negative indices), so ``-1`` is not available;
* ``sync_var`` / ``label`` store indices into the per-trace string tables;
  index ``-1`` means ``None`` (for ``sync_var``) / ``""`` (for ``label``).

Everything here degrades gracefully when numpy is unavailable: importing
the module succeeds, :data:`HAVE_NUMPY` is False, and callers fall back to
the object-based paths.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Optional, Sequence

try:  # pragma: no cover - exercised implicitly by every test run
    import numpy as np

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - numpy is baked into the image
    np = None  # type: ignore[assignment]
    HAVE_NUMPY = False

from repro.trace.events import KIND_CODE, KIND_LIST, EventKind, TraceEvent

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy.typing as npt

#: int64 stand-in for ``None`` in the ``iteration``/``sync_index`` columns.
NONE_SENTINEL = -(2**63)

#: Range of optional-field values the columnar backend can represent.
#: ``NONE_SENTINEL`` itself is reserved, so true int64-min is *not* a legal
#: ``iteration``/``sync_index`` value — packing it must fail loudly rather
#: than silently round-tripping to ``None``.
OPTIONAL_MIN = NONE_SENTINEL + 1
OPTIONAL_MAX = 2**63 - 1

#: Column names, in storage order (also the binary-format buffer order).
COLUMN_NAMES = (
    "time",
    "thread",
    "kind",
    "eid",
    "seq",
    "iteration",
    "sync_index",
    "overhead",
    "sync_var",
    "label",
)


def _require_numpy() -> None:
    if not HAVE_NUMPY:
        raise RuntimeError(
            "the columnar trace backend requires numpy, which is not installed"
        )


def _checked_optional(value: int, field: str, row: int) -> int:
    """``value`` if the int64 columns can represent it, else ValueError.

    ``NONE_SENTINEL`` (int64 min) is reserved for ``None``; anything
    outside int64 would overflow the column.  Both must be rejected here —
    numpy would accept the sentinel silently and the event would come back
    with ``field=None``, a lossy round trip no caller can detect.
    """
    if OPTIONAL_MIN <= value <= OPTIONAL_MAX:
        return value
    raise ValueError(
        f"event {row}: {field}={value} is not representable in the columnar "
        f"backend (int64 min is reserved as the None sentinel; legal range "
        f"is [{OPTIONAL_MIN}, {OPTIONAL_MAX}])"
    )


class StringTable:
    """Interned string storage: each distinct string stored once.

    Index ``-1`` is reserved for the missing value (``None`` / ``""``).
    """

    __slots__ = ("strings", "_index")

    def __init__(self, strings: Sequence[str] = ()):
        self.strings: list[str] = list(strings)
        self._index: dict[str, int] = {s: i for i, s in enumerate(self.strings)}

    def intern(self, s: Optional[str]) -> int:
        """Index of ``s``, adding it to the table if new.  None -> -1."""
        if s is None:
            return -1
        idx = self._index.get(s)
        if idx is None:
            idx = len(self.strings)
            self.strings.append(s)
            self._index[s] = idx
        return idx

    def lookup(self, idx: int) -> Optional[str]:
        return None if idx < 0 else self.strings[idx]

    def __len__(self) -> int:
        return len(self.strings)


class TraceColumns:
    """One trace as parallel int64 columns plus interned string tables.

    Columns are index-aligned: row ``i`` across all columns is one event.
    Instances are treated as immutable; transforming operations
    (:meth:`take`, :meth:`replace`) return new views/copies.
    """

    __slots__ = (
        "time",
        "thread",
        "kind",
        "eid",
        "seq",
        "iteration",
        "sync_index",
        "overhead",
        "sync_var",
        "label",
        "sync_var_table",
        "label_table",
    )

    def __init__(
        self,
        *,
        time,
        thread,
        kind,
        eid,
        seq,
        iteration,
        sync_index,
        overhead,
        sync_var,
        label,
        sync_var_table: Sequence[str],
        label_table: Sequence[str],
    ):
        _require_numpy()
        given = {
            "time": time, "thread": thread, "kind": kind, "eid": eid,
            "seq": seq, "iteration": iteration, "sync_index": sync_index,
            "overhead": overhead, "sync_var": sync_var, "label": label,
        }
        n = len(time)
        for name, raw in given.items():
            col = np.ascontiguousarray(raw, dtype=np.int64)
            if len(col) != n:
                raise ValueError(
                    f"column {name!r} has {len(col)} rows, expected {n}"
                )
            setattr(self, name, col)
        self.sync_var_table = tuple(sync_var_table)
        self.label_table = tuple(label_table)

    # -- construction ------------------------------------------------------
    @classmethod
    def from_events(cls, events: Sequence[TraceEvent]) -> "TraceColumns":
        """Pack an event sequence into columns (one pass, O(n))."""
        _require_numpy()
        n = len(events)
        cols = {name: np.empty(n, dtype=np.int64) for name in COLUMN_NAMES}
        sync_vars = StringTable()
        labels = StringTable()
        t, th, k, ei, sq, it, si, ov, sv, lb = (
            cols["time"], cols["thread"], cols["kind"], cols["eid"],
            cols["seq"], cols["iteration"], cols["sync_index"],
            cols["overhead"], cols["sync_var"], cols["label"],
        )
        kind_code = KIND_CODE
        for i, e in enumerate(events):
            t[i] = e.time
            th[i] = e.thread
            k[i] = kind_code[e.kind]
            ei[i] = e.eid
            sq[i] = e.seq
            it[i] = NONE_SENTINEL if e.iteration is None else _checked_optional(
                e.iteration, "iteration", i
            )
            si[i] = NONE_SENTINEL if e.sync_index is None else _checked_optional(
                e.sync_index, "sync_index", i
            )
            ov[i] = e.overhead
            sv[i] = sync_vars.intern(e.sync_var)
            lb[i] = labels.intern(e.label if e.label else None)
        return cls(
            sync_var_table=sync_vars.strings, label_table=labels.strings, **cols
        )

    @classmethod
    def empty(cls) -> "TraceColumns":
        return cls.from_events([])

    # -- container protocol ------------------------------------------------
    def __len__(self) -> int:
        return len(self.time)

    # -- materialization ---------------------------------------------------
    def event(self, i: int) -> TraceEvent:
        """Materialize row ``i`` as a :class:`TraceEvent`."""
        iteration = int(self.iteration[i])
        sync_index = int(self.sync_index[i])
        sv = int(self.sync_var[i])
        lb = int(self.label[i])
        return TraceEvent(
            time=int(self.time[i]),
            thread=int(self.thread[i]),
            kind=KIND_LIST[int(self.kind[i])],
            eid=int(self.eid[i]),
            seq=int(self.seq[i]),
            iteration=None if iteration == NONE_SENTINEL else iteration,
            sync_index=None if sync_index == NONE_SENTINEL else sync_index,
            sync_var=None if sv < 0 else self.sync_var_table[sv],
            label="" if lb < 0 else self.label_table[lb],
            overhead=int(self.overhead[i]),
        )

    def to_events(self) -> list[TraceEvent]:
        """Materialize every row (batched array->list conversion first)."""
        kinds = KIND_LIST
        sv_table = self.sync_var_table
        lb_table = self.label_table
        none = NONE_SENTINEL
        return [
            TraceEvent(
                time=t,
                thread=th,
                kind=kinds[k],
                eid=ei,
                seq=sq,
                iteration=None if it == none else it,
                sync_index=None if si == none else si,
                sync_var=None if sv < 0 else sv_table[sv],
                label="" if lb < 0 else lb_table[lb],
                overhead=ov,
            )
            for t, th, k, ei, sq, it, si, ov, sv, lb in zip(
                self.time.tolist(), self.thread.tolist(), self.kind.tolist(),
                self.eid.tolist(), self.seq.tolist(), self.iteration.tolist(),
                self.sync_index.tolist(), self.overhead.tolist(),
                self.sync_var.tolist(), self.label.tolist(),
            )
        ]

    def iter_events(self) -> Iterator[TraceEvent]:
        for i in range(len(self)):
            yield self.event(i)

    # -- transforms --------------------------------------------------------
    def take(self, indices) -> "TraceColumns":
        """Row subset/permutation (numpy fancy indexing; string tables shared)."""
        return self.replace(
            **{name: getattr(self, name)[indices] for name in COLUMN_NAMES}
        )

    def slice(self, start: int, stop: int) -> "TraceColumns":
        """Contiguous row range ``[start, stop)`` as a new ``TraceColumns``.

        Unlike :meth:`take` with an index array, this uses basic numpy
        slicing, so the chunk writer and streaming reader share the parent
        buffers instead of copying (1-D contiguous slices survive the
        ``ascontiguousarray`` in ``__init__`` without a copy).
        """
        return self.replace(
            **{name: getattr(self, name)[start:stop] for name in COLUMN_NAMES}
        )

    def replace(self, **overrides) -> "TraceColumns":
        """Copy with some columns (or tables) swapped out."""
        kwargs = {name: getattr(self, name) for name in COLUMN_NAMES}
        kwargs["sync_var_table"] = self.sync_var_table
        kwargs["label_table"] = self.label_table
        kwargs.update(overrides)
        return TraceColumns(**kwargs)

    # -- ordering ----------------------------------------------------------
    def is_sorted(self) -> bool:
        """True if rows are ordered by ``(time, seq)`` (vectorized O(n))."""
        if len(self) < 2:
            return True
        dt = np.diff(self.time)
        if np.any(dt < 0):
            return False
        ties = dt == 0
        if not np.any(ties):
            return True
        # ``>= 0`` (not ``> 0``): the object path's sortedness probe uses
        # ``(time, seq) <= (time, seq)``, so duplicate (time, seq) pairs
        # count as sorted there.  Requiring strictly increasing seq here
        # would send only the columnar path through a re-sort and the two
        # backends could disagree on event order for such traces.
        dseq = np.diff(self.seq)
        return bool(np.all(dseq[ties] >= 0))

    def sorted_by_time_seq(self) -> "TraceColumns":
        """Rows reordered by ``(time, seq)``; self if already sorted."""
        if self.is_sorted():
            return self
        return self.take(np.lexsort((self.seq, self.time)))

    def stamped_seq(self) -> "TraceColumns":
        """Time-sorted copy with ``seq`` = row index (normalization path).

        Mirrors the object-path rule: preserve the given order among equal
        timestamps (stable sort by time), then stamp fresh seq numbers.
        """
        time = self.time
        if len(time) > 1 and np.any(np.diff(time) < 0):
            out = self.take(np.argsort(time, kind="stable"))
        else:
            out = self
        return out.replace(seq=np.arange(len(time), dtype=np.int64))

    # -- grouping ----------------------------------------------------------
    def thread_order(self):
        """(sorted thread ids, per-thread row-index arrays).

        Grouping is a stable argsort on the ``thread`` column plus
        boundary slicing, so within each thread the rows keep the storage
        (total) order — exactly the thread-local program order when the
        columns are ``(time, seq)``-sorted.
        """
        order = np.argsort(self.thread, kind="stable")
        sorted_threads = self.thread[order]
        if len(sorted_threads) == 0:
            return [], []
        boundaries = np.flatnonzero(np.diff(sorted_threads)) + 1
        groups = np.split(order, boundaries)
        ids = [int(sorted_threads[0])] + [
            int(sorted_threads[b]) for b in boundaries
        ]
        return ids, groups

    # -- comparisons (tests / round-trip checks) ---------------------------
    def equals(self, other: "TraceColumns") -> bool:
        """Row-for-row event equality (string tables may be permuted)."""
        if len(self) != len(other):
            return False
        for name in ("time", "thread", "kind", "eid", "seq", "iteration",
                     "sync_index", "overhead"):
            if not np.array_equal(getattr(self, name), getattr(other, name)):
                return False
        for name, table in (("sync_var", "sync_var_table"),
                            ("label", "label_table")):
            mine, theirs = getattr(self, name), getattr(other, name)
            my_t, their_t = getattr(self, table), getattr(other, table)
            for a, b in zip(mine.tolist(), theirs.tolist()):
                va = None if a < 0 else my_t[a]
                vb = None if b < 0 else their_t[b]
                if va != vb:
                    return False
        return True


def kind_code_mask(kind_col, *kinds: EventKind):
    """Boolean mask of rows whose kind is one of ``kinds``."""
    codes = [KIND_CODE[k] for k in kinds]
    mask = kind_col == codes[0]
    for code in codes[1:]:
        mask |= kind_col == code
    return mask


def overhead_table(costs) -> "npt.NDArray":
    """Per-kind-code overhead lookup array for vectorized cost removal.

    ``costs`` is an :class:`~repro.instrument.costs.InstrumentationCosts`;
    indexing the result with a ``kind`` column yields each event's probe
    overhead.
    """
    _require_numpy()
    return np.array(
        [costs.overhead_for(k) for k in KIND_LIST], dtype=np.int64
    )
