"""Packed binary trace files (``.rpt``, trace formats v2 and v3).

v2 layout (``RPTRACE2``)::

    bytes 0..7    magic  b"RPTRACE2"
    bytes 8..15   little-endian uint64: JSON header length H
    bytes 16..16+H  UTF-8 JSON header:
                    {"format": "repro-trace", "version": 2,
                     "meta": {...}, "n_events": N,
                     "columns": [...], "sync_var_table": [...],
                     "label_table": [...]}
    then, per column named in "columns", N little-endian int64 values.

The v2 column buffers are the :class:`~repro.trace.columnar.TraceColumns`
arrays written verbatim, so loading is ``np.frombuffer`` per column — no
per-event parsing at all.  That buys the ~10x+ load speedup over JSONL on
million-event traces, but costs a flat 8 bytes per field on disk and
forces readers to materialize the whole trace.

v3 layout (``RPTRACE3``) replaces the flat buffers with fixed-size event
chunks whose columns are delta/varint/zlib-encoded (see
:mod:`repro.trace.codec`)::

    magic b"RPTRACE3"
    <Q header_len> <header JSON>      # + "chunk_events", "codec"
    per chunk:
        b"CHNK" <Q blob_len> blob
        blob = <I desc_len> <desc JSON> <column payloads...>
        desc = {"rows": R, "cols": {name: {"enc": "delta"|"raw",
                "nbytes": B, "min": lo, "max": hi}}}
    footer:
        b"FOOT" <Q footer_len> <footer JSON>   # chunk index (offsets,
                                               # rows, per-column min/max)
        <Q footer_block_len> b"RPT3FTR\\0"     # fixed 16-byte trailer

Each chunk is self-describing, so a sequential reader (and the
truncation-recovery path) never needs the footer; the footer lets
:class:`~repro.trace.stream.ChunkReader` seek straight to any chunk — or
skip it entirely on a min/max predicate — without touching the rest of
the file.

Writes of both versions are atomic exactly like JSONL writes: data goes
to a ``.tmp`` sibling that is fsynced and renamed over the destination.
A short file (external damage; our own writes can't produce one) raises
:class:`~repro.trace.io.TruncatedTraceError`; ``tolerate_truncation=True``
recovers the longest prefix of complete rows (v2) / complete chunks (v3)
present.  Mid-file damage that is not a clean shortfall — an undecodable
chunk payload, a bad marker — is corruption and always raises
:class:`~repro.trace.trace.TraceError`.
"""

from __future__ import annotations

import json
import os
import struct
from pathlib import Path
from typing import IO, Optional, Union

from repro.obs import core as obs
from repro.trace import codec as _codec
from repro.trace import columnar as _columnar
from repro.trace.columnar import COLUMN_NAMES, TraceColumns
from repro.trace.trace import Trace, TraceError

MAGIC = b"RPTRACE2"
MAGIC_V3 = b"RPTRACE3"
FORMAT_NAME = "repro-trace"
FORMAT_VERSION = 2
FORMAT_VERSION_V3 = 3

CHUNK_MARK = b"CHNK"
FOOTER_MARK = b"FOOT"
TRAILER_MAGIC = b"RPT3FTR\0"

#: v3 default chunk size in events (64Ki).
DEFAULT_CHUNK_EVENTS = 64 * 1024

#: Columns whose ``None`` values are stored as ``NONE_SENTINEL`` (int64
#: min).  Their chunk statistics must not be computed over raw values —
#: the sentinel would poison ``min`` and predicate pushdown could never
#: prune on them — so the writer records the non-sentinel ``min``/``max``
#: plus a ``has_none`` flag (both ``None`` when every value is the
#: sentinel).  Files written before this flag existed carry raw,
#: possibly sentinel-poisoned bounds; readers detect that by the missing
#: ``has_none`` key and treat those bounds as unusable.
OPTIONAL_STAT_COLUMNS = ("iteration", "sync_index")

_ITEMSIZE = 8  # int64


def write_trace_binary(
    trace: Trace,
    path: Union[str, Path, IO[bytes]],
    *,
    version: int = FORMAT_VERSION,
    chunk_events: Optional[int] = None,
    codec: Optional[str] = None,
    level: Optional[int] = None,
) -> None:
    """Write ``trace`` as a packed ``.rpt`` file (path or binary handle).

    ``version`` selects the layout (2 = flat buffers, 3 = chunked
    compressed columns); ``chunk_events``/``codec``/``level`` tune the v3
    writer and are rejected for v2.
    """
    _columnar._require_numpy()
    if version == FORMAT_VERSION:
        if chunk_events is not None or codec is not None or level is not None:
            raise ValueError(
                "chunk_events/codec/level only apply to trace format v3"
            )
        writer = _write_stream
    elif version == FORMAT_VERSION_V3:
        def writer(trace: Trace, fh: IO[bytes]) -> None:
            _write_stream_v3(
                trace, fh,
                chunk_events=chunk_events, codec=codec, level=level,
            )
    else:
        raise ValueError(f"unknown packed trace version {version!r}")
    if hasattr(path, "write"):
        writer(trace, path)  # type: ignore[arg-type]
        return
    target = Path(path)
    tmp = target.with_name(target.name + ".tmp")
    try:
        with open(tmp, "wb") as fh:
            writer(trace, fh)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, target)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    obs.count("io.bytes_written", target.stat().st_size)


# ------------------------------------------------------------------ v2 write
def _write_stream(trace: Trace, fh: IO[bytes]) -> None:
    cols = trace.columns
    header = {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "meta": trace.meta,
        "n_events": len(cols),
        "columns": list(COLUMN_NAMES),
        "sync_var_table": list(cols.sync_var_table),
        "label_table": list(cols.label_table),
    }
    blob = json.dumps(header, sort_keys=True).encode("utf-8")
    fh.write(MAGIC)
    fh.write(struct.pack("<Q", len(blob)))
    fh.write(blob)
    for name in COLUMN_NAMES:
        col = getattr(cols, name)
        if col.dtype.byteorder not in ("<", "=", "|"):  # pragma: no cover
            col = col.astype("<i8")
        fh.write(col.tobytes())


# ------------------------------------------------------------------ v3 write
def _column_stats(name: str, values) -> dict:
    """Chunk-descriptor ``min``/``max`` stats for one column slice.

    Optional columns get sentinel-free bounds plus ``has_none`` (see
    :data:`OPTIONAL_STAT_COLUMNS`); all other columns keep the plain
    raw-value bounds.
    """
    if name not in OPTIONAL_STAT_COLUMNS:
        return {"min": int(values.min()), "max": int(values.max())}
    present = values != _columnar.NONE_SENTINEL
    if present.all():
        lo, hi = int(values.min()), int(values.max())
        return {"min": lo, "max": hi, "has_none": False}
    if not present.any():
        return {"min": None, "max": None, "has_none": True}
    kept = values[present]
    return {"min": int(kept.min()), "max": int(kept.max()), "has_none": True}


def _write_stream_v3(
    trace: Trace,
    fh: IO[bytes],
    *,
    chunk_events: Optional[int] = None,
    codec: Optional[str] = None,
    level: Optional[int] = None,
) -> None:
    cols = trace.columns
    n = len(cols)
    chunk_events = chunk_events if chunk_events else DEFAULT_CHUNK_EVENTS
    if chunk_events < 1:
        raise ValueError(f"chunk_events must be >= 1, got {chunk_events}")
    codec = codec if codec else _codec.default_compressor()
    if codec not in _codec.COMPRESSORS:
        raise ValueError(
            f"unknown compression codec {codec!r}; "
            f"expected one of {_codec.COMPRESSORS}"
        )
    level = _codec.DEFAULT_LEVEL if level is None else level
    header = {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION_V3,
        "meta": trace.meta,
        "n_events": n,
        "columns": list(COLUMN_NAMES),
        "chunk_events": chunk_events,
        "codec": {"pack": "varint", "compress": codec},
        "sync_var_table": list(cols.sync_var_table),
        "label_table": list(cols.label_table),
    }
    blob = json.dumps(header, sort_keys=True).encode("utf-8")
    fh.write(MAGIC_V3)
    fh.write(struct.pack("<Q", len(blob)))
    fh.write(blob)
    offset = len(MAGIC_V3) + 8 + len(blob)
    index = []
    for start in range(0, n, chunk_events):
        stop = min(start + chunk_events, n)
        with obs.span("trace.v3.encode_chunk", rows=stop - start):
            desc_cols = {}
            payloads = []
            for name in COLUMN_NAMES:
                values = getattr(cols, name)[start:stop]
                enc = (
                    "delta" if name in _codec.DELTA_COLUMNS
                    else _codec.choose_encoding(values)
                )
                payload = _codec.compress(
                    _codec.encode_column(values, enc), codec, level
                )
                desc_cols[name] = {
                    "enc": enc,
                    "nbytes": len(payload),
                    **_column_stats(name, values),
                }
                payloads.append(payload)
            desc = json.dumps(
                {"rows": stop - start, "cols": desc_cols}, sort_keys=True
            ).encode("utf-8")
            body = b"".join(payloads)
            blob_len = 4 + len(desc) + len(body)
            fh.write(CHUNK_MARK)
            fh.write(struct.pack("<Q", blob_len))
            fh.write(struct.pack("<I", len(desc)))
            fh.write(desc)
            fh.write(body)
        index.append({
            "offset": offset,
            "blob_len": blob_len,
            "rows": stop - start,
            "start_row": start,
            "cols": desc_cols,
        })
        offset += len(CHUNK_MARK) + 8 + blob_len
    footer = json.dumps(
        {"chunks": index, "n_events": n}, sort_keys=True
    ).encode("utf-8")
    fh.write(FOOTER_MARK)
    fh.write(struct.pack("<Q", len(footer)))
    fh.write(footer)
    footer_block_len = len(FOOTER_MARK) + 8 + len(footer)
    fh.write(struct.pack("<Q", footer_block_len))
    fh.write(TRAILER_MAGIC)


# ------------------------------------------------------------------- reads
def read_trace_binary(
    path: Union[str, Path, IO[bytes]], *, tolerate_truncation: bool = False
) -> Trace:
    """Read a packed ``.rpt`` trace (path or binary handle, v2 or v3)."""
    _columnar._require_numpy()
    if hasattr(path, "read"):
        return _read_stream(path, tolerate_truncation)  # type: ignore[arg-type]
    size = None
    try:
        size = Path(path).stat().st_size
    except OSError:
        pass
    with open(path, "rb") as fh:
        trace = _read_stream(fh, tolerate_truncation)
    if size is not None:
        obs.count("io.bytes_read", size)
    return trace


def _read_stream(fh: IO[bytes], tolerate_truncation: bool) -> Trace:
    magic = fh.read(len(MAGIC))
    if magic == MAGIC:
        return _read_stream_v2(fh, tolerate_truncation)
    if magic == MAGIC_V3:
        return _read_stream_v3(fh, tolerate_truncation)
    raise TraceError(f"not a packed {FORMAT_NAME} file (magic={magic!r})")


#: Per-piece cap for reads whose length came off the wire.
_READ_STEP = 1 << 26


def _read_declared(fh: IO[bytes], length: int) -> bytes:
    """Read up to ``length`` bytes without trusting ``length``.

    Length fields in a corrupt file are arbitrary uint64s; handing one
    straight to ``fh.read`` raises OverflowError past ``sys.maxsize`` and
    below that tries to allocate the declared size up front.  Reading in
    bounded pieces makes an absurd length surface as an ordinary short
    read, which every caller already diagnoses.
    """
    if length <= _READ_STEP:
        return fh.read(length)
    parts = []
    remaining = length
    while remaining > 0:
        piece = fh.read(min(remaining, _READ_STEP))
        if not piece:
            break
        parts.append(piece)
        remaining -= len(piece)
    return b"".join(parts)


def _read_header(fh: IO[bytes], expect_version: int) -> dict:
    """Parse the JSON header following a just-consumed magic."""
    raw_len = fh.read(8)
    if len(raw_len) != 8:
        raise TraceError("truncated .rpt header length")
    (header_len,) = struct.unpack("<Q", raw_len)
    blob = _read_declared(fh, header_len)
    if len(blob) != header_len:
        raise TraceError("truncated .rpt header")
    try:
        header = json.loads(blob.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise TraceError(f"bad .rpt header: {exc}") from exc
    if header.get("format") != FORMAT_NAME:
        raise TraceError(
            f"not a {FORMAT_NAME} file (format={header.get('format')!r})"
        )
    if header.get("version") != expect_version:
        raise TraceError(
            f"unsupported packed trace version {header.get('version')!r}"
        )
    names = header.get("columns", list(COLUMN_NAMES))
    if set(names) != set(COLUMN_NAMES):
        raise TraceError(f"unexpected .rpt column set: {names}")
    return header


def _read_stream_v2(fh: IO[bytes], tolerate_truncation: bool) -> Trace:
    from repro.trace.io import TruncatedTraceError  # local: io imports us too

    np = _columnar.np
    header = _read_header(fh, FORMAT_VERSION)
    names = header.get("columns", list(COLUMN_NAMES))
    n = int(header.get("n_events", 0))
    meta = header.get("meta", {})

    payload = memoryview(_read_declared(fh, len(names) * n * _ITEMSIZE))
    arrays = {}
    complete = n  # rows recoverable from every column
    for i, name in enumerate(names):
        start = i * n * _ITEMSIZE
        chunk = payload[start: start + n * _ITEMSIZE]
        rows = len(chunk) // _ITEMSIZE
        complete = min(complete, rows)
        arrays[name] = np.frombuffer(
            chunk[: rows * _ITEMSIZE], dtype="<i8"
        ).astype(np.int64, copy=False)
    if complete < n:
        if not tolerate_truncation:
            raise TruncatedTraceError(
                f"truncated packed trace: header declares {n} events, "
                f"only {complete} complete rows present "
                "(pass tolerate_truncation=True to accept the prefix)",
                declared=n, parsed=complete, lineno=0,
            )
        arrays = {name: a[:complete] for name, a in arrays.items()}
        meta = dict(meta)
        meta["truncated"] = True
    columns = TraceColumns(
        sync_var_table=header.get("sync_var_table", []),
        label_table=header.get("label_table", []),
        **arrays,
    )
    return Trace.from_columns(columns, meta=meta)


# -------------------------------------------------------------- v3 chunks
def parse_chunk_desc(blob: bytes) -> tuple[dict, int]:
    """(desc dict, payload offset within blob) of one chunk blob."""
    if len(blob) < 4:
        raise TraceError("corrupt .rpt v3 chunk: blob shorter than its header")
    (desc_len,) = struct.unpack("<I", blob[:4])
    raw = blob[4: 4 + desc_len]
    if len(raw) != desc_len:
        raise TraceError("corrupt .rpt v3 chunk: descriptor overruns the blob")
    try:
        desc = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise TraceError(f"corrupt .rpt v3 chunk descriptor: {exc}") from exc
    if not isinstance(desc, dict) or "rows" not in desc or "cols" not in desc:
        raise TraceError("corrupt .rpt v3 chunk descriptor: missing fields")
    return desc, 4 + desc_len


def decode_chunk(
    blob: bytes,
    compressor: str,
    out: dict | None = None,
    start_row: int = 0,
    columns=None,
) -> dict:
    """One chunk blob -> {column name: int64 array} (plus ``"rows"``).

    With ``out`` (a dict of preallocated full-length int64 column arrays)
    the chunk is decoded in place at ``start_row``, the per-column arrays
    are omitted from the result, and no per-chunk allocations survive the
    call — the full reader uses this to skip the final concatenate.

    With ``columns`` (an iterable of column names) only those columns are
    decompressed and decoded; the rest are skipped by advancing past
    their payloads, which is what makes projected scans (query, slice,
    head-dump) cheap on wide chunks.  ``columns`` and ``out`` are
    mutually exclusive — the in-place path always fills every column.
    """
    desc, offset = parse_chunk_desc(blob)
    rows = int(desc["rows"])
    cols_desc = desc["cols"]
    arrays: dict = {"rows": rows}
    want = None if columns is None else frozenset(columns)
    if want is not None:
        if out is not None:
            raise ValueError("decode_chunk: columns= and out= are exclusive")
        unknown = want.difference(COLUMN_NAMES)
        if unknown:
            raise TraceError(f"unknown trace columns: {sorted(unknown)}")
    if out is not None and start_row + rows > len(out[COLUMN_NAMES[0]]):
        raise TraceError(
            "corrupt .rpt v3 file: chunks hold more events than the "
            "header declares"
        )
    with obs.span("trace.v3.decode_chunk", rows=rows):
        for name in COLUMN_NAMES:
            info = cols_desc.get(name)
            if info is None:
                raise TraceError(
                    f"corrupt .rpt v3 chunk: missing column {name!r}"
                )
            nbytes = int(info["nbytes"])
            payload = blob[offset: offset + nbytes]
            if len(payload) != nbytes:
                raise TraceError(
                    f"corrupt .rpt v3 chunk: column {name!r} payload overruns"
                )
            offset += nbytes
            if want is not None and name not in want:
                continue
            decoded = _codec.decode_column(
                # A varint value is at most 10 bytes, so rows*10 bounds
                # the decompressed size: one exact-ish allocation.
                _codec.decompress(payload, compressor, size_hint=rows * 10),
                rows,
                info["enc"],
                out=(
                    out[name][start_row: start_row + rows]
                    if out is not None
                    else None
                ),
            )
            if out is None:
                arrays[name] = decoded
    if offset != len(blob):
        raise TraceError(
            f".rpt v3 chunk has {len(blob) - offset} undeclared trailing bytes"
        )
    obs.count("io.chunks_decoded")
    return arrays


def iter_chunk_blobs(fh: IO[bytes]):
    """Yield ``(offset, blob_len, blob)`` for each complete chunk, in order.

    Generator protocol for the sequential v3 scan shared by the full
    reader, the truncation-recovery path, and
    :class:`~repro.trace.stream.ChunkReader`'s footer-less fallback.
    Raises :class:`TraceError` on structural damage; raises
    ``_TruncatedV3`` (caught by callers) on a clean shortfall, carrying
    whether the footer was seen.
    """
    offset = len(MAGIC_V3)
    # The caller has consumed magic + header; track offsets from what it
    # reports via ``fh.tell()`` when seekable, else recompute lazily.
    try:
        offset = fh.tell()
    except (OSError, AttributeError):  # pragma: no cover - exotic streams
        offset = -1
    while True:
        marker = fh.read(len(CHUNK_MARK))
        if len(marker) < len(CHUNK_MARK):
            raise _TruncatedV3("chunk marker missing (footer never reached)")
        if marker == FOOTER_MARK:
            raw_len = fh.read(8)
            if len(raw_len) != 8:
                raise _TruncatedV3("footer length missing")
            (flen,) = struct.unpack("<Q", raw_len)
            raw = _read_declared(fh, flen)
            if len(raw) != flen:
                raise _TruncatedV3("footer incomplete")
            try:
                footer = json.loads(raw.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise TraceError(f"bad .rpt v3 footer: {exc}") from exc
            return footer
        if marker != CHUNK_MARK:
            raise TraceError(
                f"corrupt .rpt v3 file: bad chunk marker {marker!r}"
            )
        raw_len = fh.read(8)
        if len(raw_len) != 8:
            raise _TruncatedV3("chunk length missing")
        (blob_len,) = struct.unpack("<Q", raw_len)
        blob = _read_declared(fh, blob_len)
        if len(blob) != blob_len:
            raise _TruncatedV3("chunk blob incomplete")
        yield offset, blob_len, blob
        if offset >= 0:
            offset += len(CHUNK_MARK) + 8 + blob_len


class _TruncatedV3(Exception):
    """Internal: the v3 stream ended cleanly short (not corruption)."""


def _read_stream_v3(fh: IO[bytes], tolerate_truncation: bool) -> Trace:
    from repro.trace.io import TruncatedTraceError  # local: io imports us too

    np = _columnar.np
    header = _read_header(fh, FORMAT_VERSION_V3)
    n = int(header.get("n_events", 0))
    meta = header.get("meta", {})
    compressor = header.get("codec", {}).get("compress", "zlib")

    # Columns are preallocated at their final size and every chunk
    # decodes straight into its slot — no per-chunk arrays, no final
    # concatenate.  A chunk overrunning the declared count raises inside
    # decode_chunk before anything is written past the buffers.
    arrays = {name: np.empty(n, dtype=np.int64) for name in COLUMN_NAMES}
    rows_read = 0
    truncated = False
    gen = iter_chunk_blobs(fh)
    while True:
        try:
            _offset, _blob_len, blob = next(gen)
        except StopIteration:
            break  # footer parsed; stream complete
        except _TruncatedV3 as exc:
            truncated = True
            shortfall = str(exc)
            break
        rows_read += decode_chunk(
            blob, compressor, out=arrays, start_row=rows_read
        )["rows"]
    if truncated:
        if not tolerate_truncation:
            raise TruncatedTraceError(
                f"truncated packed trace: header declares {n} events, "
                f"{rows_read} recovered from complete chunks ({shortfall}) "
                "(pass tolerate_truncation=True to accept the prefix)",
                declared=n, parsed=rows_read, lineno=0,
            )
        arrays = {name: a[:rows_read] for name, a in arrays.items()}
        meta = dict(meta)
        meta["truncated"] = True
    elif rows_read != n:
        raise TraceError(
            f"corrupt .rpt v3 file: header declares {n} events, "
            f"chunks hold {rows_read}"
        )
    columns = TraceColumns(
        sync_var_table=header.get("sync_var_table", []),
        label_table=header.get("label_table", []),
        **arrays,
    )
    return Trace.from_columns(columns, meta=meta)
