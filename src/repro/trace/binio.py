"""Packed binary trace files (``.rpt``, trace format v2).

Layout::

    bytes 0..7    magic  b"RPTRACE2"
    bytes 8..15   little-endian uint64: JSON header length H
    bytes 16..16+H  UTF-8 JSON header:
                    {"format": "repro-trace", "version": 2,
                     "meta": {...}, "n_events": N,
                     "columns": [...], "sync_var_table": [...],
                     "label_table": [...]}
    then, per column named in "columns", N little-endian int64 values.

The column buffers are the :class:`~repro.trace.columnar.TraceColumns`
arrays written verbatim, so loading is ``np.frombuffer`` per column — no
per-event parsing at all.  That is what buys the ~10x+ load speedup over
JSONL on million-event traces; JSONL remains the diffable, stream-editable
interchange format (see :mod:`repro.trace.io`, which auto-detects both).

Writes are atomic exactly like JSONL writes: data goes to a ``.tmp``
sibling that is fsynced and renamed over the destination.  A short file
(external damage; our own writes can't produce one) raises
:class:`~repro.trace.io.TruncatedTraceError`; ``tolerate_truncation=True``
recovers the longest prefix of complete rows present in every column.
"""

from __future__ import annotations

import json
import os
import struct
from pathlib import Path
from typing import IO, Union

from repro.trace import columnar as _columnar
from repro.trace.columnar import COLUMN_NAMES, TraceColumns
from repro.trace.trace import Trace, TraceError

MAGIC = b"RPTRACE2"
FORMAT_NAME = "repro-trace"
FORMAT_VERSION = 2

_ITEMSIZE = 8  # int64


def write_trace_binary(trace: Trace, path: Union[str, Path, IO[bytes]]) -> None:
    """Write ``trace`` as a packed ``.rpt`` file (path or binary handle)."""
    _columnar._require_numpy()
    if hasattr(path, "write"):
        _write_stream(trace, path)  # type: ignore[arg-type]
        return
    target = Path(path)
    tmp = target.with_name(target.name + ".tmp")
    try:
        with open(tmp, "wb") as fh:
            _write_stream(trace, fh)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, target)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise


def _write_stream(trace: Trace, fh: IO[bytes]) -> None:
    cols = trace.columns
    header = {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "meta": trace.meta,
        "n_events": len(cols),
        "columns": list(COLUMN_NAMES),
        "sync_var_table": list(cols.sync_var_table),
        "label_table": list(cols.label_table),
    }
    blob = json.dumps(header, sort_keys=True).encode("utf-8")
    fh.write(MAGIC)
    fh.write(struct.pack("<Q", len(blob)))
    fh.write(blob)
    for name in COLUMN_NAMES:
        col = getattr(cols, name)
        if col.dtype.byteorder not in ("<", "=", "|"):  # pragma: no cover
            col = col.astype("<i8")
        fh.write(col.tobytes())


def read_trace_binary(
    path: Union[str, Path, IO[bytes]], *, tolerate_truncation: bool = False
) -> Trace:
    """Read a packed ``.rpt`` trace (path or binary handle)."""
    _columnar._require_numpy()
    if hasattr(path, "read"):
        return _read_stream(path, tolerate_truncation)  # type: ignore[arg-type]
    with open(path, "rb") as fh:
        return _read_stream(fh, tolerate_truncation)


def _read_stream(fh: IO[bytes], tolerate_truncation: bool) -> Trace:
    from repro.trace.io import TruncatedTraceError  # local: io imports us too

    np = _columnar.np
    magic = fh.read(len(MAGIC))
    if magic != MAGIC:
        raise TraceError(
            f"not a packed {FORMAT_NAME} file (magic={magic!r})"
        )
    raw_len = fh.read(8)
    if len(raw_len) != 8:
        raise TraceError("truncated .rpt header length")
    (header_len,) = struct.unpack("<Q", raw_len)
    blob = fh.read(header_len)
    if len(blob) != header_len:
        raise TraceError("truncated .rpt header")
    try:
        header = json.loads(blob.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise TraceError(f"bad .rpt header: {exc}") from exc
    if header.get("format") != FORMAT_NAME:
        raise TraceError(
            f"not a {FORMAT_NAME} file (format={header.get('format')!r})"
        )
    if header.get("version") != FORMAT_VERSION:
        raise TraceError(
            f"unsupported packed trace version {header.get('version')!r}"
        )
    names = header.get("columns", list(COLUMN_NAMES))
    if set(names) != set(COLUMN_NAMES):
        raise TraceError(f"unexpected .rpt column set: {names}")
    n = int(header.get("n_events", 0))
    meta = header.get("meta", {})

    payload = memoryview(fh.read(len(names) * n * _ITEMSIZE))
    arrays = {}
    complete = n  # rows recoverable from every column
    for i, name in enumerate(names):
        start = i * n * _ITEMSIZE
        chunk = payload[start: start + n * _ITEMSIZE]
        rows = len(chunk) // _ITEMSIZE
        complete = min(complete, rows)
        arrays[name] = np.frombuffer(
            chunk[: rows * _ITEMSIZE], dtype="<i8"
        ).astype(np.int64, copy=False)
    if complete < n:
        if not tolerate_truncation:
            raise TruncatedTraceError(
                f"truncated packed trace: header declares {n} events, "
                f"only {complete} complete rows present "
                "(pass tolerate_truncation=True to accept the prefix)",
                declared=n, parsed=complete, lineno=0,
            )
        arrays = {name: a[:complete] for name, a in arrays.items()}
        meta = dict(meta)
        meta["truncated"] = True
    columns = TraceColumns(
        sync_var_table=header.get("sync_var_table", []),
        label_table=header.get("label_table", []),
        **arrays,
    )
    return Trace.from_columns(columns, meta=meta)
