"""Trace event records.

Every observable action in an execution is a :class:`TraceEvent`.  The
vocabulary mirrors the paper's instrumentation (§4.2.2): statement events,
``advance`` events, begin/end ``await`` events (``awaitB`` / ``awaitE``),
plus barrier and loop-structure markers needed for the DOACROSS model.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Any, Optional


class EventKind(enum.Enum):
    """The kind of action a trace event records."""

    PROG_BEGIN = "prog_begin"
    PROG_END = "prog_end"
    STMT = "stmt"  # execution of one program statement
    LOOP_BEGIN = "loop_begin"  # a CE enters a parallel loop
    LOOP_END = "loop_end"  # a CE leaves a parallel loop (after barrier)
    ITER_BEGIN = "iter_begin"  # a CE is dispatched an iteration
    ADVANCE = "advance"  # advance(A, i) completed
    AWAIT_B = "awaitB"  # await(A, i) began
    AWAIT_E = "awaitE"  # await(A, i) satisfied
    BARRIER_ARRIVE = "barrier_arrive"
    BARRIER_EXIT = "barrier_exit"
    LOCK_REQ = "lockReq"  # lock(L) requested
    LOCK_ACQ = "lockAcq"  # lock(L) acquired
    LOCK_REL = "lockRel"  # lock(L) released
    SEM_REQ = "semReq"  # P(S) requested
    SEM_ACQ = "semAcq"  # P(S) granted
    SEM_SIG = "semSig"  # V(S) completed

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Declaration-ordered kinds; index = the stable integer code used by the
#: columnar backend and the packed binary trace format.
KIND_LIST: tuple[EventKind, ...] = tuple(EventKind)

#: EventKind -> integer code (position in :data:`KIND_LIST`).
KIND_CODE: dict[EventKind, int] = {k: i for i, k in enumerate(KIND_LIST)}

#: value-string -> member map; dict lookup is ~5x faster than the
#: ``EventKind(value)`` constructor and this is the JSONL-read hot path.
_KIND_BY_VALUE: dict[str, EventKind] = {k.value: k for k in EventKind}


def kind_from_value(value: str) -> EventKind:
    """Fast ``EventKind(value)``: precomputed value->member lookup."""
    try:
        return _KIND_BY_VALUE[value]
    except KeyError:
        raise ValueError(f"{value!r} is not a valid EventKind") from None


#: Kinds that participate in inter-thread synchronization semantics.
SYNC_KINDS = frozenset(
    {
        EventKind.ADVANCE,
        EventKind.AWAIT_B,
        EventKind.AWAIT_E,
        EventKind.BARRIER_ARRIVE,
        EventKind.BARRIER_EXIT,
        EventKind.LOCK_REQ,
        EventKind.LOCK_ACQ,
        EventKind.LOCK_REL,
        EventKind.SEM_REQ,
        EventKind.SEM_ACQ,
        EventKind.SEM_SIG,
    }
)


def is_sync_kind(kind: EventKind) -> bool:
    """True if events of this kind carry synchronization semantics."""
    return kind in SYNC_KINDS


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One event in an execution trace.

    Slotted: traces hold up to millions of these, and attribute access is
    on the analysis hot path.

    Attributes
    ----------
    time:
        Occurrence time in machine cycles (the paper's ``t(e)``).  For a
        measured trace this is the perturbed timestamp ``t_m``; for a
        logical or approximated trace it is ``t`` / ``t_a``.
    thread:
        Computational element (CE) id the event occurred on.
    kind:
        Event kind; see :class:`EventKind`.
    eid:
        Event identifier: the static statement id in the program
        (the paper's ``eid``).  -1 for structural markers without a
        corresponding statement.
    seq:
        Per-trace sequence number assigned at recording time; gives a
        stable total order even among equal timestamps.
    iteration:
        Loop iteration index this event belongs to, or None outside loops.
        For sync events this is the unique pairing identifier the paper's
        instrumentation stores (§4.2.2).
    sync_var:
        Synchronization variable name for advance/await events.
    sync_index:
        The index argument ``i`` of ``advance(A, i)`` / ``await(A, i)``.
    label:
        Human-readable statement label (diagnostics only).
    overhead:
        Instrumentation overhead, in cycles, charged at this event by the
        tracer.  This is *metadata the analysis is allowed to use* (the
        paper's measured per-event instrumentation costs); it never includes
        any ground-truth information about the uninstrumented run.
    """

    time: int
    thread: int
    kind: EventKind
    eid: int = -1
    seq: int = -1
    iteration: Optional[int] = None
    sync_var: Optional[str] = None
    sync_index: Optional[int] = None
    label: str = ""
    overhead: int = 0

    def with_time(self, time: int) -> "TraceEvent":
        """Copy of this event re-timed (used when building approximations)."""
        return replace(self, time=int(time))

    @property
    def sync_key(self) -> tuple[str, int]:
        """Pairing key for advance/await matching."""
        if self.sync_var is None or self.sync_index is None:
            raise ValueError(f"event has no sync identity: {self}")
        return (self.sync_var, self.sync_index)

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form for serialization."""
        d: dict[str, Any] = {
            "time": self.time,
            "thread": self.thread,
            "kind": self.kind.value,
            "eid": self.eid,
            "seq": self.seq,
            "overhead": self.overhead,
        }
        if self.iteration is not None:
            d["iteration"] = self.iteration
        if self.sync_var is not None:
            d["sync_var"] = self.sync_var
        if self.sync_index is not None:
            d["sync_index"] = self.sync_index
        if self.label:
            d["label"] = self.label
        return d

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "TraceEvent":
        return cls(
            time=int(d["time"]),
            thread=int(d["thread"]),
            kind=kind_from_value(d["kind"]),
            eid=int(d.get("eid", -1)),
            seq=int(d.get("seq", -1)),
            iteration=d.get("iteration"),
            sync_var=d.get("sync_var"),
            sync_index=d.get("sync_index"),
            label=d.get("label", ""),
            overhead=int(d.get("overhead", 0)),
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        extra = ""
        if self.sync_var is not None:
            extra = f" {self.sync_var}[{self.sync_index}]"
        it = f" it={self.iteration}" if self.iteration is not None else ""
        return f"[t={self.time} ce={self.thread}] {self.kind.value}{extra}{it} {self.label}"
