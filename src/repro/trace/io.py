"""Trace file I/O.

Traces are stored as JSON Lines: a header object on the first line
(``{"format": ..., "meta": {...}}``) followed by one event object per line.
JSONL keeps files streamable and diff-friendly for multi-million event
traces while remaining human-inspectable.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO, Union

from repro.trace.events import TraceEvent
from repro.trace.trace import Trace, TraceError

FORMAT_NAME = "repro-trace"
FORMAT_VERSION = 1


def write_trace(trace: Trace, path: Union[str, Path, IO[str]]) -> None:
    """Write a trace to ``path`` (a path or an open text handle)."""
    header = {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "meta": trace.meta,
        "n_events": len(trace),
    }
    if hasattr(path, "write"):
        _write_stream(trace, header, path)  # type: ignore[arg-type]
    else:
        with open(path, "w", encoding="utf-8") as fh:
            _write_stream(trace, header, fh)


def _write_stream(trace: Trace, header: dict, fh: IO[str]) -> None:
    fh.write(json.dumps(header, sort_keys=True) + "\n")
    for event in trace:
        fh.write(json.dumps(event.to_dict(), sort_keys=True) + "\n")


def read_trace(path: Union[str, Path, IO[str]]) -> Trace:
    """Read a trace previously written by :func:`write_trace`."""
    if hasattr(path, "read"):
        return _read_stream(path)  # type: ignore[arg-type]
    with open(path, "r", encoding="utf-8") as fh:
        return _read_stream(fh)


def _read_stream(fh: IO[str]) -> Trace:
    first = fh.readline()
    if not first:
        raise TraceError("empty trace file")
    try:
        header = json.loads(first)
    except json.JSONDecodeError as exc:
        raise TraceError(f"bad trace header: {exc}") from exc
    if header.get("format") != FORMAT_NAME:
        raise TraceError(f"not a {FORMAT_NAME} file (format={header.get('format')!r})")
    if header.get("version") != FORMAT_VERSION:
        raise TraceError(f"unsupported trace version {header.get('version')!r}")
    events = []
    for lineno, line in enumerate(fh, start=2):
        line = line.strip()
        if not line:
            continue
        try:
            events.append(TraceEvent.from_dict(json.loads(line)))
        except (json.JSONDecodeError, KeyError, ValueError) as exc:
            raise TraceError(f"bad event on line {lineno}: {exc}") from exc
    declared = header.get("n_events")
    if declared is not None and declared != len(events):
        raise TraceError(
            f"truncated trace: header declares {declared} events, found {len(events)}"
        )
    return Trace(events, meta=header.get("meta", {}))
