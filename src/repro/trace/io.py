"""Trace file I/O.

Two on-disk formats share one entry point pair:

* **JSONL** (format v1): a header object on the first line
  (``{"format": ..., "meta": {...}}``) followed by one event object per
  line.  Streamable, diffable, human-inspectable.
* **Packed binary v2** (``.rpt``, :mod:`repro.trace.binio`): the columnar
  backend's numpy buffers written verbatim after a small JSON header.
  ~10x+ faster to load at million-event scale and loads straight into the
  vectorized analysis paths with zero per-event parsing.
* **Packed binary v3** (``.rpt``, chunked + compressed): the same columns
  split into fixed-size event chunks, delta/varint/zlib-encoded per
  column, with a chunk index so :mod:`repro.trace.stream` can analyze
  arbitrarily large traces in bounded memory.  See ``docs/FORMATS.md``.

:func:`read_trace` auto-detects the format from the file's leading bytes
(the ``RPTRACE2``/``RPTRACE3`` magic), so readers never need to care which
one they were handed.  :func:`write_trace` picks the format from the
target's suffix (``.rpt`` -> packed binary, anything else -> JSONL) unless
``format=`` forces one; for packed targets the version defaults to v2
unless the ``REPRO_TRACE_FORMAT`` environment variable says ``v3`` (an
explicit ``format="v2"``/``"v3"`` argument always wins over the
environment).  ``repro-trace convert`` translates between all three.

Robustness guarantees:

* :func:`write_trace` is **atomic** for path targets — it writes to a
  ``.tmp`` sibling and :func:`os.replace`\\ s it into place, so a crash
  mid-write can never leave a half-trace behind under the final name;
* :func:`read_trace` distinguishes *truncated* traces (a partial final
  line or fewer events than the header declares — what a crashed tracer
  leaves behind) from mid-file corruption, reports exactly how much was
  recovered, and with ``tolerate_truncation=True`` returns the parsed
  prefix instead of raising.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import IO, Optional, Union

from repro.trace.events import TraceEvent
from repro.trace.trace import Trace, TraceError

FORMAT_NAME = "repro-trace"
FORMAT_VERSION = 1


def default_packed_format() -> str:
    """Packed version ``"rpt"`` resolves to: ``"v2"``, or ``"v3"`` when
    the ``REPRO_TRACE_FORMAT`` environment variable selects it.

    Only ``"v2"``/``"v3"`` (and the aliases ``"2"``/``"3"``) are honored;
    anything else — including ``"jsonl"``, which cannot be a *packed*
    default — raises so a typo in CI config fails loudly instead of
    silently writing the wrong format.
    """
    raw = os.environ.get("REPRO_TRACE_FORMAT", "").strip().lower()
    if raw in ("", "rpt", "v2", "2"):
        return "v2"
    if raw in ("v3", "3"):
        return "v3"
    raise ValueError(
        f"REPRO_TRACE_FORMAT={raw!r} is not a packed trace version "
        "(expected 'v2' or 'v3')"
    )


class TruncatedTraceError(TraceError):
    """The trace file ends early (crash mid-write, disk full, ...).

    Attributes
    ----------
    declared:
        Event count the header promised (None if the header lacked one).
    parsed:
        Events successfully parsed before the file ended.
    lineno:
        Line number of the first unreadable/absent line.
    """

    def __init__(self, message: str, *, declared, parsed: int, lineno: int):
        super().__init__(message)
        self.declared = declared
        self.parsed = parsed
        self.lineno = lineno


def write_trace(
    trace: Trace,
    path: Union[str, Path, IO[str], IO[bytes]],
    *,
    format: Optional[str] = None,
    chunk_events: Optional[int] = None,
    codec: Optional[str] = None,
    level: Optional[int] = None,
) -> None:
    """Write a trace to ``path`` (a path or an open handle).

    ``format`` is ``"jsonl"``, ``"rpt"``, ``"v2"``, ``"v3"``, or None to
    infer: a ``.rpt`` path suffix (or a binary handle) selects the packed
    format, anything else JSONL.  ``"rpt"`` (and an inferred packed
    target) writes the *default* packed version — v2, or v3 when the
    ``REPRO_TRACE_FORMAT`` environment variable is ``v3``; ``"v2"``/
    ``"v3"`` pin a version explicitly.  ``chunk_events``/``codec``/
    ``level`` tune the v3 chunk layout and are rejected for other formats.
    Path targets are written atomically: the data goes to a ``.tmp``
    sibling which is fsynced and renamed over the destination, so readers
    never observe a partially written trace under the final name.
    """
    from repro.trace import binio

    if format not in (None, "jsonl", "rpt", "v2", "v3"):
        raise ValueError(f"unknown trace format {format!r}")
    if format is None:
        if hasattr(path, "write"):
            format = "rpt" if _is_binary_handle(path) else "jsonl"
        else:
            format = "rpt" if Path(path).suffix == ".rpt" else "jsonl"
    if format == "rpt":
        format = default_packed_format()
    if format in ("v2", "v3"):
        version = (
            binio.FORMAT_VERSION if format == "v2" else binio.FORMAT_VERSION_V3
        )
        binio.write_trace_binary(
            trace, path, version=version,
            chunk_events=chunk_events, codec=codec, level=level,
        )
        return
    if chunk_events is not None or codec is not None or level is not None:
        raise ValueError("chunk_events/codec/level only apply to trace format v3")
    header = {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "meta": trace.meta,
        "n_events": len(trace),
    }
    if hasattr(path, "write"):
        _write_stream(trace, header, path)  # type: ignore[arg-type]
        return
    target = Path(path)
    tmp = target.with_name(target.name + ".tmp")
    try:
        with open(tmp, "w", encoding="utf-8") as fh:
            _write_stream(trace, header, fh)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, target)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise


def _write_stream(trace: Trace, header: dict, fh: IO[str]) -> None:
    fh.write(json.dumps(header, sort_keys=True) + "\n")
    for event in trace:
        fh.write(json.dumps(event.to_dict(), sort_keys=True) + "\n")


def _is_binary_handle(fh) -> bool:
    """True if ``fh`` yields/accepts bytes rather than text."""
    mode = getattr(fh, "mode", "")
    if isinstance(mode, str) and "b" in mode:
        return True
    # In-memory streams have no mode; probe the buffer type instead.
    import io as _io

    return isinstance(fh, (_io.RawIOBase, _io.BufferedIOBase))


def read_trace(
    path: Union[str, Path, IO[str], IO[bytes]],
    *,
    tolerate_truncation: bool = False,
) -> Trace:
    """Read a trace previously written by :func:`write_trace`.

    The on-disk format (JSONL v1 vs packed ``.rpt`` v2/v3) is
    auto-detected from the file's leading bytes; binary handles are
    likewise sniffed for the ``RPTRACE2``/``RPTRACE3`` magic.

    A file that ends early — a partial final line, or fewer events than
    the header's ``n_events`` — raises :class:`TruncatedTraceError`
    reporting the failing line, the declared count, and how many events
    were recovered.  Pass ``tolerate_truncation=True`` to get the parsed
    prefix back instead (its ``meta`` gains ``truncated: True``).
    Corruption *before* the final line is never tolerated: that is damage,
    not truncation, and always raises :class:`TraceError`.
    """
    from repro.trace.binio import MAGIC, MAGIC_V3, read_trace_binary

    if hasattr(path, "read"):
        if _is_binary_handle(path):
            head = path.read(len(MAGIC))
            rest = path.read()
            import io as _io

            if head in (MAGIC, MAGIC_V3):
                return read_trace_binary(
                    _io.BytesIO(head + rest),
                    tolerate_truncation=tolerate_truncation,
                )
            try:
                text = _io.StringIO((head + rest).decode("utf-8"))
            except UnicodeDecodeError as exc:
                raise TraceError(f"not a trace file: {exc}") from exc
            return _read_stream(text, tolerate_truncation)
        return _read_stream(path, tolerate_truncation)  # type: ignore[arg-type]
    with open(path, "rb") as probe:
        is_packed = probe.read(len(MAGIC)) in (MAGIC, MAGIC_V3)
    if is_packed:
        return read_trace_binary(path, tolerate_truncation=tolerate_truncation)
    try:
        with open(path, "r", encoding="utf-8") as fh:
            return _read_stream(fh, tolerate_truncation)
    except UnicodeDecodeError as exc:
        raise TraceError(f"not a trace file: {exc}") from exc


def _read_stream(fh: IO[str], tolerate_truncation: bool = False) -> Trace:
    first = fh.readline()
    if not first:
        raise TraceError("empty trace file")
    try:
        header = json.loads(first)
    except json.JSONDecodeError as exc:
        raise TraceError(f"bad trace header: {exc}") from exc
    if header.get("format") != FORMAT_NAME:
        raise TraceError(f"not a {FORMAT_NAME} file (format={header.get('format')!r})")
    if header.get("version") != FORMAT_VERSION:
        raise TraceError(f"unsupported trace version {header.get('version')!r}")
    declared = header.get("n_events")
    meta = header.get("meta", {})
    events: list[TraceEvent] = []
    bad: tuple[int, Exception] | None = None  # first unparseable line
    for lineno, line in enumerate(fh, start=2):
        line = line.strip()
        if not line:
            continue
        if bad is not None:
            # A parseable-or-not line *after* the failure means the damage
            # was mid-file — corruption, not truncation.
            badline, exc = bad
            raise TraceError(f"bad event on line {badline}: {exc}") from exc
        try:
            events.append(TraceEvent.from_dict(json.loads(line)))
        except (json.JSONDecodeError, KeyError, ValueError, TypeError) as exc:
            bad = (lineno, exc)
    if bad is not None:
        # The damaged line was the last one: a classic torn final write.
        lineno, exc = bad
        if not tolerate_truncation:
            raise TruncatedTraceError(
                f"truncated trace: unparseable final line {lineno}; header "
                f"declares {declared} events, {len(events)} parsed cleanly "
                "(pass tolerate_truncation=True to accept the prefix)",
                declared=declared, parsed=len(events), lineno=lineno,
            ) from exc
        return _truncated(events, meta)
    if declared is not None and declared != len(events):
        if len(events) < declared and tolerate_truncation:
            return _truncated(events, meta)
        raise TruncatedTraceError(
            f"truncated trace: header declares {declared} events, found "
            f"{len(events)}"
            + (" (pass tolerate_truncation=True to accept the prefix)"
               if len(events) < declared else ""),
            declared=declared, parsed=len(events), lineno=len(events) + 2,
        )
    return Trace(events, meta=meta)


def _truncated(events: list[TraceEvent], meta: dict) -> Trace:
    meta = dict(meta)
    meta["truncated"] = True
    return Trace(events, meta=meta)
