"""Happened-before and feasibility checking on traces.

The paper's conservative approximation requirement (§4.1): an approximated
execution is *feasible* iff it preserves the partial order defined by (a)
per-thread program order and (b) the synchronization relationships —
``advance(A, i)`` happened-before ``awaitE(A, i)``, and every
``barrier_arrive`` of a generation happened-before every ``barrier_exit`` of
that generation.  These checks are used by tests and by
:func:`repro.analysis.eventbased.event_based_approximation` to validate its
own output.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.trace.events import EventKind, TraceEvent
from repro.trace.trace import Trace, TraceError


class CausalityViolation(TraceError):
    """An ordering required by synchronization semantics does not hold."""


def _barrier_generations(trace: Trace) -> dict[tuple[str, int], dict[str, list[TraceEvent]]]:
    """Group barrier events by (barrier name, generation).

    Barrier events reuse ``sync_var`` for the barrier name and
    ``sync_index`` for the generation number.
    """
    gens: dict[tuple[str, int], dict[str, list[TraceEvent]]] = {}
    for e in trace.events:
        if e.kind in (EventKind.BARRIER_ARRIVE, EventKind.BARRIER_EXIT):
            key = (e.sync_var or "barrier", e.sync_index or 0)
            bucket = gens.setdefault(key, {"arrive": [], "exit": []})
            bucket["arrive" if e.kind is EventKind.BARRIER_ARRIVE else "exit"].append(e)
    return gens


def sync_partial_order(trace: Trace) -> list[tuple[TraceEvent, TraceEvent]]:
    """The inter-thread edges of the happened-before relation.

    Returns (earlier, later) pairs:

    * ``advance(A, i)`` -> ``awaitE(A, i)`` for each matched pair;
    * each ``barrier_arrive`` -> each ``barrier_exit`` of the same
      (barrier, generation);
    * ``lockRel`` of the k-th acquisition of a lock -> ``lockAcq`` of the
      (k+1)-th, in the trace's own acquisition order (mutual exclusion).
    """
    edges: list[tuple[TraceEvent, TraceEvent]] = []
    advances = trace.advances()
    for key, (_b, end) in trace.await_pairs().items():
        adv = advances.get(key)
        if adv is None:
            if key[1] < 0:
                # DOACROSS prologue: awaits on negative indices are satisfied
                # immediately and have no producer by construction.
                continue
            raise CausalityViolation(f"awaitE {key} has no matching advance")
        edges.append((adv, end))
    for _key, bucket in _barrier_generations(trace).items():
        for arrive in bucket["arrive"]:
            for exit_ in bucket["exit"]:
                edges.append((arrive, exit_))
    uses = trace.lock_uses()
    for _lock, keys in trace.lock_acquisition_order().items():
        for prev_key, next_key in zip(keys, keys[1:]):
            edges.append((uses[prev_key]["rel"], uses[next_key]["acq"]))
        # Within one use: req -> acq -> rel (often same thread, but the
        # edge also covers handoff bookkeeping threads).
        for key in keys:
            edges.append((uses[key]["req"], uses[key]["acq"]))
            edges.append((uses[key]["acq"], uses[key]["rel"]))
    sem_uses = trace.sem_uses()
    if sem_uses:
        capacities = trace.meta.get("semaphores")
        if not capacities:
            raise CausalityViolation(
                "trace has semaphore events but no declared capacities in "
                "its metadata"
            )
        grant_order = trace.sem_grant_order()
        signal_order = trace.sem_signal_order()
        for sem, grants in grant_order.items():
            cap = int(capacities[sem])
            signals = signal_order[sem]
            # The k-th grant (0-based) consumes the unit freed by the
            # (k - cap)-th signal; the first `cap` grants need none.
            for k, key in enumerate(grants):
                if k >= cap:
                    edges.append(
                        (sem_uses[signals[k - cap]]["sig"], sem_uses[key]["acq"])
                    )
                edges.append((sem_uses[key]["req"], sem_uses[key]["acq"]))
                edges.append((sem_uses[key]["acq"], sem_uses[key]["sig"]))
    return edges


def happened_before_pairs(trace: Trace) -> Iterator[tuple[TraceEvent, TraceEvent]]:
    """All covering edges of happened-before: program order + sync edges.

    Program order contributes consecutive same-thread pairs only (the
    transitive closure is implied).
    """
    for view in trace.by_thread().values():
        for a, b in zip(view.events, view.events[1:]):
            yield (a, b)
    yield from sync_partial_order(trace)


def verify_causality(trace: Trace) -> None:
    """Check that timestamps respect happened-before.

    Same-thread successors must not be earlier than predecessors; sync
    edges must satisfy ``t(earlier) <= t(later)``.  Raises
    :class:`CausalityViolation` on the first violation found.
    """
    for a, b in happened_before_pairs(trace):
        if b.time < a.time:
            raise CausalityViolation(
                f"event order violates causality:\n  earlier: {a}\n  later:   {b}"
            )


def verify_feasible(approx: Trace, measured: Trace) -> None:
    """Check that ``approx`` is a conservative approximation of ``measured``.

    Requirements (§4.1): the approximation must contain the same dependent
    (sync) events with the same pairing, and the relative order of dependent
    events present in the measured execution must be maintained.  Raises
    :class:`CausalityViolation` if not.
    """
    # Same sync vocabulary.
    m_adv = set(measured.advances().keys())
    a_adv = set(approx.advances().keys())
    if m_adv != a_adv:
        raise CausalityViolation(
            f"advance sets differ: only-measured={sorted(m_adv - a_adv)}, "
            f"only-approx={sorted(a_adv - m_adv)}"
        )
    m_pairs = set(measured.await_pairs().keys())
    a_pairs = set(approx.await_pairs().keys())
    if m_pairs != a_pairs:
        raise CausalityViolation(
            f"await sets differ: only-measured={sorted(m_pairs - a_pairs)}, "
            f"only-approx={sorted(a_pairs - m_pairs)}"
        )
    # Conservative lock analysis must preserve the measured acquisition
    # order per lock.
    m_order = measured.lock_acquisition_order()
    a_order = approx.lock_acquisition_order()
    if set(m_order) != set(a_order):
        raise CausalityViolation(
            f"lock sets differ: measured={sorted(m_order)}, approx={sorted(a_order)}"
        )
    for lock, keys in m_order.items():
        if a_order[lock] != keys:
            raise CausalityViolation(
                f"lock {lock!r} acquisition order changed in the approximation"
            )
    m_sem = measured.sem_grant_order()
    a_sem = approx.sem_grant_order()
    if set(m_sem) != set(a_sem):
        raise CausalityViolation(
            f"semaphore sets differ: measured={sorted(m_sem)}, approx={sorted(a_sem)}"
        )
    for sem, keys in m_sem.items():
        if a_sem[sem] != keys:
            raise CausalityViolation(
                f"semaphore {sem!r} grant order changed in the approximation"
            )
    # Approximation's own timestamps must respect the partial order.
    verify_causality(approx)


def critical_path_length(trace: Trace) -> int:
    """Length (in cycles) of the longest happened-before chain.

    Computed by a forward relaxation over events in total order; a useful
    lower bound on any feasible execution's duration given the same event
    durations.
    """
    if not trace.events:
        return 0
    # Build successor edges keyed by event seq.
    dist: dict[int, int] = {}
    incoming: dict[int, list[TraceEvent]] = {}
    for a, b in happened_before_pairs(trace):
        incoming.setdefault(b.seq, []).append(a)
    longest = 0
    for e in trace.events:  # total order is a topological order (verified traces)
        preds = incoming.get(e.seq, [])
        base = max((dist[p.seq] + (e.time - p.time) for p in preds), default=0)
        dist[e.seq] = base
        longest = max(longest, base)
    return longest
