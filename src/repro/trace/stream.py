"""Bounded-memory access to chunked packed traces (``.rpt`` v3).

:class:`ChunkReader` opens a v3 file and yields one
:class:`~repro.trace.columnar.TraceColumns` per chunk — never more than
one chunk's columns are resident at a time, so traces far larger than RAM
can be analyzed.  The chunk index (the v3 footer) is located via the
fixed trailer at end-of-file; files whose footer is missing (truncated by
a crash) fall back to a sequential scan and, with
``tolerate_truncation=True``, expose the longest complete-chunk prefix.

On top of the reader sit incremental drivers for the three whole-trace
passes:

* :func:`stream_time_based` — the time-based model's per-thread
  clipped-delta cumsum, run chunk-by-chunk with explicit carry state
  (:class:`TimeBasedFold`).  Byte-identical to the in-memory columnar
  backend: splitting a cumsum at a chunk boundary and carrying
  ``(last t_m, last t_a)`` per thread is associativity, not
  approximation.  The same fold powers
  ``time_based_approximation(..., backend="streaming")``.
* :func:`stream_trace_stats` — per-chunk partial statistics merged into
  one :class:`~repro.trace.stats.TraceStats`.
* :func:`stream_validate` — feeds each chunk's events through the
  bounded-state :class:`~repro.resilience.validate.StreamingValidator`.

:func:`storage_report` summarizes the on-disk layout (per-column bytes,
chunk count, compression ratio) for ``repro-trace stats``.
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import Callable, Iterator, Optional, Union

from repro.obs import core as obs
from repro.trace import binio as _binio
from repro.trace import columnar as _columnar
from repro.trace.columnar import COLUMN_NAMES, TraceColumns
from repro.trace.trace import TraceError

#: ``chunks(where=...)`` predicates receive one chunk-index entry:
#: ``{"rows": R, "start_row": S, "cols": {name: {"min": lo, "max": hi}}}``.
ChunkPredicate = Callable[[dict], bool]


class ChunkReader:
    """Random and sequential access to the chunks of a ``.rpt`` v3 file.

    The constructor reads only the header and the chunk index; column
    data is decoded one chunk at a time on demand.  Use as a context
    manager (or call :meth:`close`).

    ``tolerate_truncation`` mirrors :func:`~repro.trace.io.read_trace`:
    a file that ends early (no footer) normally raises
    :class:`~repro.trace.io.TruncatedTraceError`; with the flag set the
    reader exposes the longest complete-chunk prefix instead and
    ``meta["truncated"]`` is True.
    """

    def __init__(
        self,
        path: Union[str, Path],
        *,
        tolerate_truncation: bool = False,
    ):
        _columnar._require_numpy()
        self.path = Path(path)
        self._fh = open(self.path, "rb")
        try:
            self._load_index(tolerate_truncation)
        except BaseException:
            self._fh.close()
            raise

    # ------------------------------------------------------------- setup
    def _load_index(self, tolerate_truncation: bool) -> None:
        from repro.trace.io import TruncatedTraceError

        fh = self._fh
        magic = fh.read(len(_binio.MAGIC_V3))
        if magic == _binio.MAGIC:
            raise TraceError(
                f"{self.path} is a v2 (unchunked) packed trace; "
                "ChunkReader requires v3 — convert with "
                "'repro-trace convert --format v3'"
            )
        if magic != _binio.MAGIC_V3:
            raise TraceError(
                f"{self.path} is not a chunked packed trace "
                f"(magic={magic!r})"
            )
        header = _binio._read_header(fh, _binio.FORMAT_VERSION_V3)
        self.meta: dict = header.get("meta", {})
        self.declared_events: int = int(header.get("n_events", 0))
        self.chunk_events: int = int(
            header.get("chunk_events", _binio.DEFAULT_CHUNK_EVENTS)
        )
        self.codec: dict = header.get("codec", {})
        self._compressor: str = self.codec.get("compress", "zlib")
        self.sync_var_table = tuple(header.get("sync_var_table", []))
        self.label_table = tuple(header.get("label_table", []))
        self.truncated = False

        index = self._index_from_trailer()
        if index is None:
            index = self._index_from_scan()
            if index is None:  # clean shortfall: no footer reachable
                index = self._scanned_prefix
                rows = sum(c["rows"] for c in index)
                if not tolerate_truncation:
                    raise TruncatedTraceError(
                        f"truncated packed trace: header declares "
                        f"{self.declared_events} events, {rows} recovered "
                        "from complete chunks (pass tolerate_truncation="
                        "True to accept the prefix)",
                        declared=self.declared_events, parsed=rows, lineno=0,
                    )
                self.truncated = True
                self.meta = dict(self.meta)
                self.meta["truncated"] = True
        self.chunk_index: list[dict] = index
        self.n_events: int = sum(c["rows"] for c in index)
        if not self.truncated and self.n_events != self.declared_events:
            raise TraceError(
                f"corrupt .rpt v3 file: header declares "
                f"{self.declared_events} events, chunks hold {self.n_events}"
            )

    def _index_from_trailer(self) -> Optional[list[dict]]:
        """Chunk index via the fixed 16-byte end-of-file trailer."""
        fh = self._fh
        tail_len = 8 + len(_binio.TRAILER_MAGIC)
        try:
            fh.seek(-tail_len, 2)
        except OSError:
            return None
        tail = fh.read(tail_len)
        if len(tail) != tail_len or tail[8:] != _binio.TRAILER_MAGIC:
            return None
        (footer_block_len,) = struct.unpack("<Q", tail[:8])
        end = fh.seek(0, 2)
        foot_at = end - tail_len - footer_block_len
        if foot_at < len(_binio.MAGIC_V3):
            return None
        fh.seek(foot_at)
        if fh.read(len(_binio.FOOTER_MARK)) != _binio.FOOTER_MARK:
            return None
        (flen,) = struct.unpack("<Q", fh.read(8))
        if flen != footer_block_len - len(_binio.FOOTER_MARK) - 8:
            return None
        import json

        try:
            footer = json.loads(fh.read(flen).decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            return None
        chunks = footer.get("chunks")
        if not isinstance(chunks, list):
            return None
        return chunks

    def _index_from_scan(self) -> Optional[list[dict]]:
        """Sequential fallback: walk chunk markers, parse descriptors.

        Returns the index if the footer is eventually reached; on a clean
        shortfall returns None with the complete-chunk prefix stashed in
        ``self._scanned_prefix``.  Corruption raises.
        """
        fh = self._fh
        fh.seek(len(_binio.MAGIC_V3))
        _binio._read_header(fh, _binio.FORMAT_VERSION_V3)
        index: list[dict] = []
        start_row = 0
        gen = _binio.iter_chunk_blobs(fh)
        while True:
            try:
                offset, blob_len, blob = next(gen)
            except StopIteration:
                return index
            except _binio._TruncatedV3:
                self._scanned_prefix = index
                return None
            desc, _payload_at = _binio.parse_chunk_desc(blob)
            index.append({
                "offset": offset,
                "blob_len": blob_len,
                "rows": int(desc["rows"]),
                "start_row": start_row,
                "cols": desc["cols"],
            })
            start_row += int(desc["rows"])

    # ------------------------------------------------------------ access
    @property
    def n_chunks(self) -> int:
        return len(self.chunk_index)

    def chunk_info(self, i: int) -> dict:
        """Index entry for chunk ``i`` (rows, start_row, per-column min/max)."""
        return self.chunk_index[i]

    def read_blob(self, i: int) -> bytes:
        """Raw (still-compressed) blob of chunk ``i`` (one seek).

        Callers that decode the same chunk twice at different projections
        (e.g. the streaming slicer's thread-mask-then-full pass) fetch
        the blob once and run :func:`~repro.trace.binio.decode_chunk`
        themselves with different ``columns=``.
        """
        info = self.chunk_index[i]
        fh = self._fh
        fh.seek(int(info["offset"]))
        marker = fh.read(len(_binio.CHUNK_MARK))
        if marker != _binio.CHUNK_MARK:
            raise TraceError(
                f"corrupt .rpt v3 file: chunk {i} index points at "
                f"{marker!r}, not a chunk marker"
            )
        (blob_len,) = struct.unpack("<Q", fh.read(8))
        if blob_len != int(info["blob_len"]):
            raise TraceError(
                f"corrupt .rpt v3 file: chunk {i} length disagrees with "
                "the footer index"
            )
        blob = _binio._read_declared(fh, blob_len)
        if len(blob) != blob_len:
            raise TraceError(f"corrupt .rpt v3 file: chunk {i} cut short")
        return blob

    @property
    def compressor(self) -> str:
        """Compression codec name chunk payloads were written with."""
        return self._compressor

    def read_chunk_arrays(self, i: int, columns=None) -> dict:
        """Decode chunk ``i`` to ``{name: int64 array}`` plus ``"rows"``.

        ``columns`` projects the decode: only the named columns are
        decompressed (the rest are skipped byte-wise), so scans that
        touch two or three columns never pay for all ten.
        """
        arrays = _binio.decode_chunk(
            self.read_blob(i), self._compressor, columns=columns
        )
        if arrays["rows"] != int(self.chunk_index[i]["rows"]):
            raise TraceError(
                f"corrupt .rpt v3 file: chunk {i} row count disagrees with "
                "the footer index"
            )
        return arrays

    def read_chunk(self, i: int) -> TraceColumns:
        """Decode chunk ``i`` into a :class:`TraceColumns` (one seek)."""
        arrays = self.read_chunk_arrays(i)
        arrays.pop("rows")
        return TraceColumns(
            sync_var_table=self.sync_var_table,
            label_table=self.label_table,
            **arrays,
        )

    def chunks(
        self, where: Optional[ChunkPredicate] = None
    ) -> Iterator[tuple[int, TraceColumns]]:
        """Yield ``(start_row, columns)`` per chunk, in file order.

        ``where`` receives each chunk's index entry (with per-column
        min/max) *before* any decoding; returning False skips the chunk
        without reading its bytes (counted as ``io.chunks_skipped``).
        """
        for i, info in enumerate(self.chunk_index):
            if where is not None and not where(info):
                obs.count("io.chunks_skipped")
                continue
            yield int(info["start_row"]), self.read_chunk(i)

    def close(self) -> None:
        self._fh.close()

    def __enter__(self) -> "ChunkReader":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# --------------------------------------------------------- time-based fold
class TimeBasedFold:
    """Chunk-by-chunk time-based analysis with per-thread carry state.

    Feeding the chunks of a trace in storage order reproduces the
    in-memory columnar backend exactly: along one thread the model is a
    cumulative sum of zero-clipped deltas, and a cumsum split at any
    boundary is recovered by carrying ``(last t_m, last t_a)`` — integer
    associativity, no approximation.  State is O(threads); each
    :meth:`feed` allocates O(chunk).
    """

    def __init__(self, per_kind_overhead):
        self._per_kind = per_kind_overhead
        self._carry: dict[int, tuple[int, int]] = {}

    def feed(self, cols: TraceColumns):
        """Process one chunk; returns its ``t_a`` array (row-aligned)."""
        np = _columnar.np
        overhead = self._per_kind[cols.kind]
        ta = np.empty(len(cols), dtype=np.int64)
        for tid, idx in zip(*cols.thread_order()):
            tm = cols.time[idx]
            ov = overhead[idx]
            deltas = np.empty(len(idx), dtype=np.int64)
            prev = self._carry.get(tid)
            if prev is None:
                base = 0
                deltas[0] = max(0, int(tm[0]) - int(ov[0]))
            else:
                prev_tm, base = prev
                deltas[0] = max(0, int(tm[0]) - prev_tm - int(ov[0]))
            if len(idx) > 1:
                np.subtract(tm[1:], tm[:-1], out=deltas[1:])
                deltas[1:] -= ov[1:]
                np.maximum(deltas[1:], 0, out=deltas[1:])
            ta_t = np.cumsum(deltas)
            ta_t += base
            ta[idx] = ta_t
            self._carry[tid] = (int(tm[-1]), int(ta_t[-1]))
        return ta


class StreamingAnalysis:
    """Result of :func:`stream_time_based`.

    ``times`` is the full ``seq -> t_a`` mapping when collected, else
    None (total-only mode keeps peak memory at O(chunk)).
    """

    __slots__ = ("times", "total_time", "n_events")

    def __init__(self, times: Optional[dict], total_time: int, n_events: int):
        self.times = times
        self.total_time = total_time
        self.n_events = n_events


def stream_time_based(
    path: Union[str, Path],
    constants,
    *,
    collect_times: bool = True,
    chunk_reader: Optional[ChunkReader] = None,
) -> StreamingAnalysis:
    """Time-based analysis of a v3 file without materializing the trace.

    With ``collect_times=False`` only the total approximated time is
    tracked and peak memory stays O(chunk) + O(threads); with the default
    the per-event mapping is accumulated (the output itself is O(n)).
    Raises the same :class:`~repro.analysis.approximation.AnalysisError`
    as ``time_based_approximation`` on empty or uninstrumented traces, so
    the backends agree on failures too.
    """
    from repro.analysis.approximation import AnalysisError

    np = _columnar.np
    owns = chunk_reader is None
    reader = chunk_reader or ChunkReader(path)
    try:
        if reader.n_events == 0:
            raise AnalysisError("cannot analyze an empty trace")
        if not reader.meta.get("instrumented", True):
            raise AnalysisError(
                "trace is not a measured (instrumented) trace; "
                "nothing to remove"
            )
        fold = TimeBasedFold(_columnar.overhead_table(constants.costs))
        total = 0
        collected: list[tuple] = []
        with obs.span(
            "analysis.timebased", backend="streaming-file",
            n_events=reader.n_events,
        ):
            for _start, cols in reader.chunks():
                ta = fold.feed(cols)
                total = max(total, int(ta.max()))
                if collect_times:
                    collected.append((cols.seq, ta))
        times = None
        if collect_times:
            seqs = np.concatenate([s for s, _ in collected])
            tas = np.concatenate([t for _, t in collected])
            times = dict(zip(seqs.tolist(), tas.tolist()))
        return StreamingAnalysis(times, total, reader.n_events)
    finally:
        if owns:
            reader.close()


# ------------------------------------------------------------------ stats
def stream_trace_stats(path: Union[str, Path]):
    """Chunk-by-chunk :func:`~repro.trace.stats.trace_stats` equivalent.

    Merges per-chunk partials (bincounts, per-thread counts, overhead
    sums, masked string-table uniques); matches the in-memory result
    field-for-field while holding one chunk at a time.
    """
    from repro.trace.events import EventKind
    from repro.trace.stats import TraceStats

    np = _columnar.np
    with ChunkReader(path) as reader:
        kind_counts = np.zeros(len(_columnar.KIND_LIST), dtype=np.int64)
        by_thread: dict[int, int] = {}
        total_overhead = 0
        sync_idx: set[int] = set()
        lock_idx: set[int] = set()
        loop_idx: set[int] = set()
        start_time = end_time = 0
        first = True
        for _start, cols in reader.chunks():
            kind_counts += np.bincount(
                cols.kind, minlength=len(_columnar.KIND_LIST)
            )
            threads, counts = np.unique(cols.thread, return_counts=True)
            for t, c in zip(threads.tolist(), counts.tolist()):
                by_thread[t] = by_thread.get(t, 0) + c
            total_overhead += int(cols.overhead.sum())
            sync_idx.update(np.unique(cols.sync_var[_columnar.kind_code_mask(
                cols.kind, EventKind.ADVANCE, EventKind.AWAIT_B,
                EventKind.AWAIT_E)]).tolist())
            lock_idx.update(np.unique(cols.sync_var[_columnar.kind_code_mask(
                cols.kind, EventKind.LOCK_REQ, EventKind.LOCK_ACQ,
                EventKind.LOCK_REL)]).tolist())
            loop_idx.update(np.unique(cols.label[
                cols.kind == _columnar.KIND_CODE[EventKind.LOOP_BEGIN]
            ]).tolist())
            if first and len(cols):
                start_time = int(cols.time[0])
                first = False
            if len(cols):
                end_time = int(cols.time[-1])
        by_kind = {
            _columnar.KIND_LIST[code].value: int(count)
            for code, count in enumerate(kind_counts.tolist())
            if count
        }
        sv_table, lb_table = reader.sync_var_table, reader.label_table
        sync_vars = {sv_table[i] for i in sync_idx if i >= 0 and sv_table[i]}
        locks = {sv_table[i] for i in lock_idx if i >= 0 and sv_table[i]}
        loops = {"" if i < 0 else lb_table[i] for i in loop_idx}
        return TraceStats(
            n_events=reader.n_events,
            n_threads=len(by_thread),
            duration=end_time - start_time,
            by_kind=dict(sorted(by_kind.items())),
            by_thread=dict(sorted(by_thread.items())),
            total_overhead=total_overhead,
            sync_vars=tuple(sorted(sync_vars)),
            locks=tuple(sorted(locks)),
            loops=tuple(sorted(loops)),
        )


# --------------------------------------------------------------- validate
def stream_validate(path: Union[str, Path]):
    """Chunk-by-chunk :func:`~repro.resilience.validate.validate_trace`.

    Feeds each chunk's events through the bounded-state
    :class:`~repro.resilience.validate.StreamingValidator` in storage
    (total) order — the same order the in-memory validator sees — so the
    diagnostics match while only one chunk's events exist at a time.
    """
    from repro.resilience.validate import StreamingValidator

    with ChunkReader(path) as reader:
        validator = StreamingValidator(
            sem_capacities=reader.meta.get("semaphores")
        )
        for _start, cols in reader.chunks():
            for event in cols.to_events():
                validator.feed(event)
        return validator.finish()


# ------------------------------------------------------------ disk layout
def storage_report(path: Union[str, Path]) -> dict:
    """On-disk layout summary of a v3 file for ``repro-trace stats``.

    Returns ``{"n_chunks", "chunk_events", "codec", "file_bytes",
    "logical_bytes", "ratio", "columns": {name: bytes}}`` where
    ``logical_bytes`` is what the same columns cost in v2 (8 bytes per
    field) and ``ratio`` is logical/actual column payload compression.
    """
    path = Path(path)
    with ChunkReader(path) as reader:
        per_column = {name: 0 for name in COLUMN_NAMES}
        for info in reader.chunk_index:
            for name, col in info["cols"].items():
                per_column[name] += int(col["nbytes"])
        payload = sum(per_column.values())
        logical = reader.n_events * len(COLUMN_NAMES) * 8
        return {
            "n_chunks": reader.n_chunks,
            "chunk_events": reader.chunk_events,
            "codec": dict(reader.codec),
            "file_bytes": path.stat().st_size,
            "payload_bytes": payload,
            "logical_bytes": logical,
            "ratio": (logical / payload) if payload else 0.0,
            "columns": per_column,
        }
