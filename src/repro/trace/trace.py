"""Trace containers.

A :class:`Trace` holds the totally-ordered event sequence of one execution
plus execution metadata.  Per-thread projections (:class:`ThreadView`) give
the thread-local event order that both analysis phases walk.

Storage backends
----------------
A trace is backed by *either* a Python list of :class:`TraceEvent` objects
(the historical representation) *or* a struct-of-arrays
:class:`~repro.trace.columnar.TraceColumns` block (numpy int64 columns +
interned string tables).  Both sides are materialized lazily and cached:

* ``trace.events`` on a columnar-backed trace builds the object list on
  first access, so every existing object-walking call site keeps working;
* ``trace.columns`` on an object-backed trace packs the columns on first
  access, so vectorized hot paths (time-based analysis, validation,
  stats) can run on any trace.

Vectorized consumers should prefer ``trace.columns``; convenience and
correctness-first consumers keep using ``trace.events``.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Optional, Sequence

from repro.trace import columnar as _columnar
from repro.trace.events import EventKind, TraceEvent
from repro.trace.columnar import TraceColumns


class TraceError(ValueError):
    """Raised for structurally invalid traces."""


class ThreadView:
    """The events of a single thread, in thread-local (program) order.

    May be backed by an explicit event list or lazily by a parent trace's
    columns plus a row-index array; ``start_time``/``end_time`` read the
    backing store directly, so probing a columnar view's time span never
    materializes event objects.
    """

    __slots__ = ("thread", "_events", "_columns", "_indices")

    def __init__(
        self,
        thread: int,
        events: Optional[list[TraceEvent]] = None,
        *,
        columns: Optional[TraceColumns] = None,
        indices=None,
    ):
        if events is None and columns is None:
            raise ValueError("ThreadView needs events or columns+indices")
        self.thread = thread
        self._events = events
        self._columns = columns
        self._indices = indices

    @property
    def events(self) -> list[TraceEvent]:
        if self._events is None:
            self._events = self._columns.take(self._indices).to_events()
        return self._events

    def __len__(self) -> int:
        if self._events is None:
            return len(self._indices)
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def __getitem__(self, i: int) -> TraceEvent:
        if self._events is None:
            return self._columns.event(int(self._indices[i]))
        return self._events[i]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ThreadView):
            return NotImplemented
        return self.thread == other.thread and self.events == other.events

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ThreadView(thread={self.thread}, {len(self)} events)"

    @property
    def start_time(self) -> int:
        if self._events is None:
            if len(self._indices) == 0:
                return 0
            return int(self._columns.time[self._indices[0]])
        return self._events[0].time if self._events else 0

    @property
    def end_time(self) -> int:
        if self._events is None:
            if len(self._indices) == 0:
                return 0
            return int(self._columns.time[self._indices[-1]])
        return self._events[-1].time if self._events else 0


def _is_time_sorted(events: Sequence[TraceEvent]) -> bool:
    """O(n) sortedness probe by time (guards the normalization sort)."""
    return all(a.time <= b.time for a, b in zip(events, events[1:]))


def _is_time_seq_sorted(events: Sequence[TraceEvent]) -> bool:
    """O(n) sortedness probe by (time, seq)."""
    return all(
        (a.time, a.seq) <= (b.time, b.seq)
        for a, b in zip(events, events[1:])
    )


class Trace:
    """A totally-ordered event trace with metadata.

    Events are stored sorted by ``(time, seq)``.  The constructor normalises
    ordering and (re)assigns sequence numbers when they are missing.

    Parameters
    ----------
    events:
        The trace events.
    meta:
        Free-form metadata dictionary.  Conventional keys used by this
        package: ``program`` (name), ``n_threads``, ``instrumented`` (bool),
        ``kind`` (``"logical" | "measured" | "approximated"``),
        ``clock_mhz``.
    """

    def __init__(self, events: Iterable[TraceEvent], meta: Optional[dict[str, Any]] = None):
        evs = list(events)
        needs_seq = any(e.seq < 0 for e in evs)
        if needs_seq:
            # Preserve given order for equal timestamps, then stamp seq.
            # Executors and readers already emit time-ordered events, so
            # probe sortedness first instead of paying an unconditional
            # O(n log n) sort.
            if not _is_time_sorted(evs):
                evs.sort(key=lambda e: e.time)
            evs = [
                TraceEvent(
                    time=e.time,
                    thread=e.thread,
                    kind=e.kind,
                    eid=e.eid,
                    seq=i,
                    iteration=e.iteration,
                    sync_var=e.sync_var,
                    sync_index=e.sync_index,
                    label=e.label,
                    overhead=e.overhead,
                )
                for i, e in enumerate(evs)
            ]
        elif not _is_time_seq_sorted(evs):
            evs.sort(key=lambda e: (e.time, e.seq))
        self._events: Optional[list[TraceEvent]] = evs
        self._columns: Optional[TraceColumns] = None
        self.meta: dict[str, Any] = dict(meta or {})
        self._thread_cache: Optional[dict[int, ThreadView]] = None

    @classmethod
    def from_columns(
        cls, columns: TraceColumns, meta: Optional[dict[str, Any]] = None
    ) -> "Trace":
        """Build a columnar-backed trace (no event objects materialized).

        Applies the same normalization as the event constructor — sort by
        ``(time, seq)``, or stable-sort by time and stamp fresh ``seq``
        numbers when any are missing — but with argsort/lexsort on the
        columns instead of a Python-object sort.
        """
        np = _columnar.np
        if len(columns) and bool(np.any(columns.seq < 0)):
            columns = columns.stamped_seq()
        else:
            columns = columns.sorted_by_time_seq()
        trace = cls.__new__(cls)
        trace._events = None
        trace._columns = columns
        trace.meta = dict(meta or {})
        trace._thread_cache = None
        return trace

    # -- backends ----------------------------------------------------------
    @property
    def events(self) -> list[TraceEvent]:
        """The events as objects (lazily materialized from columns)."""
        if self._events is None:
            self._events = self._columns.to_events()
        return self._events

    @events.setter
    def events(self, events: list[TraceEvent]) -> None:
        """Replace the event list wholesale (drops cached columns/views)."""
        self._events = events
        self._columns = None
        self._thread_cache = None

    @property
    def columns(self) -> TraceColumns:
        """Struct-of-arrays view of the trace (lazily packed, cached)."""
        if self._columns is None:
            self._columns = TraceColumns.from_events(self._events)
        return self._columns

    @property
    def has_columns(self) -> bool:
        """True if the columnar form is already realized (no packing cost)."""
        return self._columns is not None

    # -- container protocol ------------------------------------------------
    def __len__(self) -> int:
        if self._events is None:
            return len(self._columns)
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def __getitem__(self, i: int) -> TraceEvent:
        return self.events[i]

    # -- structure -----------------------------------------------------------
    @property
    def threads(self) -> list[int]:
        """Sorted list of thread ids appearing in the trace."""
        return sorted(self.by_thread().keys())

    def by_thread(self) -> dict[int, ThreadView]:
        """Per-thread projections, each in thread-local order.

        On a columnar-backed trace the grouping is a stable argsort on the
        thread column plus boundary slicing; the per-thread views
        materialize event objects only when their ``events`` are touched.
        """
        if self._thread_cache is None:
            if self._events is None:
                ids, groups = self._columns.thread_order()
                self._thread_cache = {
                    t: ThreadView(t, columns=self._columns, indices=idx)
                    for t, idx in zip(ids, groups)
                }
            else:
                buckets: dict[int, list[TraceEvent]] = {}
                for e in self._events:
                    buckets.setdefault(e.thread, []).append(e)
                self._thread_cache = {
                    t: ThreadView(t, evs) for t, evs in buckets.items()
                }
        return self._thread_cache

    def thread(self, thread_id: int) -> ThreadView:
        views = self.by_thread()
        if thread_id not in views:
            raise TraceError(f"no events for thread {thread_id}")
        return views[thread_id]

    def of_kind(self, *kinds: EventKind) -> list[TraceEvent]:
        """All events of the given kind(s), in total order."""
        wanted = set(kinds)
        return [e for e in self.events if e.kind in wanted]

    # -- timing -----------------------------------------------------------
    @property
    def start_time(self) -> int:
        if self._events is None:
            cols = self._columns
            return int(cols.time[0]) if len(cols) else 0
        return self._events[0].time if self._events else 0

    @property
    def end_time(self) -> int:
        if self._events is None:
            cols = self._columns
            return int(cols.time[-1]) if len(cols) else 0
        return self._events[-1].time if self._events else 0

    @property
    def duration(self) -> int:
        """Total execution time spanned by the trace, in cycles."""
        return self.end_time - self.start_time

    def duration_us(self, clock_mhz: Optional[float] = None) -> float:
        """Duration in microseconds given a clock rate (meta fallback)."""
        mhz = clock_mhz if clock_mhz is not None else self.meta.get("clock_mhz")
        if not mhz:
            raise TraceError("no clock rate available to convert cycles to time")
        return self.duration / mhz

    # -- sync structure ----------------------------------------------------
    def advances(self) -> dict[tuple[str, int], TraceEvent]:
        """Map sync key -> advance event.  Duplicate advances are an error."""
        out: dict[tuple[str, int], TraceEvent] = {}
        for e in self.of_kind(EventKind.ADVANCE):
            key = e.sync_key
            if key in out:
                raise TraceError(f"duplicate advance for {key}")
            out[key] = e
        return out

    def await_pairs(self) -> dict[tuple[str, int], tuple[TraceEvent, TraceEvent]]:
        """Map sync key -> (awaitB, awaitE) event pair for each await."""
        begins: dict[tuple[str, int], TraceEvent] = {}
        pairs: dict[tuple[str, int], tuple[TraceEvent, TraceEvent]] = {}
        for e in self.events:
            if e.kind is EventKind.AWAIT_B:
                key = e.sync_key
                if key in begins or key in pairs:
                    raise TraceError(f"duplicate awaitB for {key}")
                begins[key] = e
            elif e.kind is EventKind.AWAIT_E:
                key = e.sync_key
                if key not in begins:
                    raise TraceError(f"awaitE without awaitB for {key}")
                pairs[key] = (begins.pop(key), e)
        if begins:
            raise TraceError(f"awaitB without awaitE for {sorted(begins)}")
        return pairs

    def lock_uses(self) -> dict[tuple[str, int], dict[str, TraceEvent]]:
        """Map (lock, iteration) -> {"req": e, "acq": e, "rel": e}.

        Each dynamic lock use must appear as a complete request/acquire/
        release triple; anything else is a malformed trace.
        """
        out: dict[tuple[str, int], dict[str, TraceEvent]] = {}
        roles = {
            EventKind.LOCK_REQ: "req",
            EventKind.LOCK_ACQ: "acq",
            EventKind.LOCK_REL: "rel",
        }
        for e in self.events:
            role = roles.get(e.kind)
            if role is None:
                continue
            key = e.sync_key
            bucket = out.setdefault(key, {})
            if role in bucket:
                raise TraceError(f"duplicate lock {role} for {key}")
            bucket[role] = e
        for key, bucket in out.items():
            if set(bucket) != {"req", "acq", "rel"}:
                raise TraceError(
                    f"incomplete lock use {key}: has {sorted(bucket)}"
                )
        return out

    def lock_acquisition_order(self) -> dict[str, list[tuple[str, int]]]:
        """Per lock, the use keys in order of acquisition time."""
        uses = self.lock_uses()
        by_lock: dict[str, list[tuple[str, int]]] = {}
        for key, bucket in uses.items():
            by_lock.setdefault(key[0], []).append(key)
        for lock, keys in by_lock.items():
            keys.sort(key=lambda k: (uses[k]["acq"].time, uses[k]["acq"].seq))
        return by_lock

    def sem_uses(self) -> dict[tuple[str, int], dict[str, TraceEvent]]:
        """Map (semaphore, iteration) -> {"req": e, "acq": e, "sig": e}."""
        out: dict[tuple[str, int], dict[str, TraceEvent]] = {}
        roles = {
            EventKind.SEM_REQ: "req",
            EventKind.SEM_ACQ: "acq",
            EventKind.SEM_SIG: "sig",
        }
        for e in self.events:
            role = roles.get(e.kind)
            if role is None:
                continue
            key = e.sync_key
            bucket = out.setdefault(key, {})
            if role in bucket:
                raise TraceError(f"duplicate semaphore {role} for {key}")
            bucket[role] = e
        for key, bucket in out.items():
            if set(bucket) != {"req", "acq", "sig"}:
                raise TraceError(
                    f"incomplete semaphore use {key}: has {sorted(bucket)}"
                )
        return out

    def sem_grant_order(self) -> dict[str, list[tuple[str, int]]]:
        """Per semaphore, use keys ordered by grant (SEM_ACQ) time."""
        uses = self.sem_uses()
        by_sem: dict[str, list[tuple[str, int]]] = {}
        for key in uses:
            by_sem.setdefault(key[0], []).append(key)
        for sem, keys in by_sem.items():
            keys.sort(key=lambda k: (uses[k]["acq"].time, uses[k]["acq"].seq))
        return by_sem

    def sem_signal_order(self) -> dict[str, list[tuple[str, int]]]:
        """Per semaphore, use keys ordered by signal (SEM_SIG) time."""
        uses = self.sem_uses()
        by_sem: dict[str, list[tuple[str, int]]] = {}
        for key in uses:
            by_sem.setdefault(key[0], []).append(key)
        for sem, keys in by_sem.items():
            keys.sort(key=lambda k: (uses[k]["sig"].time, uses[k]["sig"].seq))
        return by_sem

    def relabelled(self, **meta: Any) -> "Trace":
        """Copy of this trace with updated metadata."""
        new_meta = dict(self.meta)
        new_meta.update(meta)
        if self._events is None:
            return Trace.from_columns(self._columns, new_meta)
        return Trace(self._events, new_meta)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Trace({len(self)} events, {len(self.threads)} threads, "
            f"duration={self.duration}, kind={self.meta.get('kind', '?')})"
        )
