"""Trace containers.

A :class:`Trace` holds the totally-ordered event sequence of one execution
plus execution metadata.  Per-thread projections (:class:`ThreadView`) give
the thread-local event order that both analysis phases walk.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Optional, Sequence

from repro.trace.events import EventKind, TraceEvent


class TraceError(ValueError):
    """Raised for structurally invalid traces."""


@dataclass
class ThreadView:
    """The events of a single thread, in thread-local (program) order."""

    thread: int
    events: list[TraceEvent]

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def __getitem__(self, i: int) -> TraceEvent:
        return self.events[i]

    @property
    def start_time(self) -> int:
        return self.events[0].time if self.events else 0

    @property
    def end_time(self) -> int:
        return self.events[-1].time if self.events else 0


class Trace:
    """A totally-ordered event trace with metadata.

    Events are stored sorted by ``(time, seq)``.  The constructor normalises
    ordering and (re)assigns sequence numbers when they are missing.

    Parameters
    ----------
    events:
        The trace events.
    meta:
        Free-form metadata dictionary.  Conventional keys used by this
        package: ``program`` (name), ``n_threads``, ``instrumented`` (bool),
        ``kind`` (``"logical" | "measured" | "approximated"``),
        ``clock_mhz``.
    """

    def __init__(self, events: Iterable[TraceEvent], meta: Optional[dict[str, Any]] = None):
        evs = list(events)
        needs_seq = any(e.seq < 0 for e in evs)
        if needs_seq:
            # Preserve given order for equal timestamps, then stamp seq.
            evs.sort(key=lambda e: e.time)
            evs = [
                TraceEvent(
                    time=e.time,
                    thread=e.thread,
                    kind=e.kind,
                    eid=e.eid,
                    seq=i,
                    iteration=e.iteration,
                    sync_var=e.sync_var,
                    sync_index=e.sync_index,
                    label=e.label,
                    overhead=e.overhead,
                )
                for i, e in enumerate(evs)
            ]
        else:
            evs.sort(key=lambda e: (e.time, e.seq))
        self.events: list[TraceEvent] = evs
        self.meta: dict[str, Any] = dict(meta or {})
        self._thread_cache: Optional[dict[int, ThreadView]] = None

    # -- container protocol ------------------------------------------------
    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def __getitem__(self, i: int) -> TraceEvent:
        return self.events[i]

    # -- structure -----------------------------------------------------------
    @property
    def threads(self) -> list[int]:
        """Sorted list of thread ids appearing in the trace."""
        return sorted(self.by_thread().keys())

    def by_thread(self) -> dict[int, ThreadView]:
        """Per-thread projections, each in thread-local order."""
        if self._thread_cache is None:
            buckets: dict[int, list[TraceEvent]] = {}
            for e in self.events:
                buckets.setdefault(e.thread, []).append(e)
            self._thread_cache = {
                t: ThreadView(t, evs) for t, evs in buckets.items()
            }
        return self._thread_cache

    def thread(self, thread_id: int) -> ThreadView:
        views = self.by_thread()
        if thread_id not in views:
            raise TraceError(f"no events for thread {thread_id}")
        return views[thread_id]

    def of_kind(self, *kinds: EventKind) -> list[TraceEvent]:
        """All events of the given kind(s), in total order."""
        wanted = set(kinds)
        return [e for e in self.events if e.kind in wanted]

    # -- timing -----------------------------------------------------------
    @property
    def start_time(self) -> int:
        return self.events[0].time if self.events else 0

    @property
    def end_time(self) -> int:
        return self.events[-1].time if self.events else 0

    @property
    def duration(self) -> int:
        """Total execution time spanned by the trace, in cycles."""
        return self.end_time - self.start_time

    def duration_us(self, clock_mhz: Optional[float] = None) -> float:
        """Duration in microseconds given a clock rate (meta fallback)."""
        mhz = clock_mhz if clock_mhz is not None else self.meta.get("clock_mhz")
        if not mhz:
            raise TraceError("no clock rate available to convert cycles to time")
        return self.duration / mhz

    # -- sync structure ----------------------------------------------------
    def advances(self) -> dict[tuple[str, int], TraceEvent]:
        """Map sync key -> advance event.  Duplicate advances are an error."""
        out: dict[tuple[str, int], TraceEvent] = {}
        for e in self.of_kind(EventKind.ADVANCE):
            key = e.sync_key
            if key in out:
                raise TraceError(f"duplicate advance for {key}")
            out[key] = e
        return out

    def await_pairs(self) -> dict[tuple[str, int], tuple[TraceEvent, TraceEvent]]:
        """Map sync key -> (awaitB, awaitE) event pair for each await."""
        begins: dict[tuple[str, int], TraceEvent] = {}
        pairs: dict[tuple[str, int], tuple[TraceEvent, TraceEvent]] = {}
        for e in self.events:
            if e.kind is EventKind.AWAIT_B:
                key = e.sync_key
                if key in begins or key in pairs:
                    raise TraceError(f"duplicate awaitB for {key}")
                begins[key] = e
            elif e.kind is EventKind.AWAIT_E:
                key = e.sync_key
                if key not in begins:
                    raise TraceError(f"awaitE without awaitB for {key}")
                pairs[key] = (begins.pop(key), e)
        if begins:
            raise TraceError(f"awaitB without awaitE for {sorted(begins)}")
        return pairs

    def lock_uses(self) -> dict[tuple[str, int], dict[str, TraceEvent]]:
        """Map (lock, iteration) -> {"req": e, "acq": e, "rel": e}.

        Each dynamic lock use must appear as a complete request/acquire/
        release triple; anything else is a malformed trace.
        """
        out: dict[tuple[str, int], dict[str, TraceEvent]] = {}
        roles = {
            EventKind.LOCK_REQ: "req",
            EventKind.LOCK_ACQ: "acq",
            EventKind.LOCK_REL: "rel",
        }
        for e in self.events:
            role = roles.get(e.kind)
            if role is None:
                continue
            key = e.sync_key
            bucket = out.setdefault(key, {})
            if role in bucket:
                raise TraceError(f"duplicate lock {role} for {key}")
            bucket[role] = e
        for key, bucket in out.items():
            if set(bucket) != {"req", "acq", "rel"}:
                raise TraceError(
                    f"incomplete lock use {key}: has {sorted(bucket)}"
                )
        return out

    def lock_acquisition_order(self) -> dict[str, list[tuple[str, int]]]:
        """Per lock, the use keys in order of acquisition time."""
        uses = self.lock_uses()
        by_lock: dict[str, list[tuple[str, int]]] = {}
        for key, bucket in uses.items():
            by_lock.setdefault(key[0], []).append(key)
        for lock, keys in by_lock.items():
            keys.sort(key=lambda k: (uses[k]["acq"].time, uses[k]["acq"].seq))
        return by_lock

    def sem_uses(self) -> dict[tuple[str, int], dict[str, TraceEvent]]:
        """Map (semaphore, iteration) -> {"req": e, "acq": e, "sig": e}."""
        out: dict[tuple[str, int], dict[str, TraceEvent]] = {}
        roles = {
            EventKind.SEM_REQ: "req",
            EventKind.SEM_ACQ: "acq",
            EventKind.SEM_SIG: "sig",
        }
        for e in self.events:
            role = roles.get(e.kind)
            if role is None:
                continue
            key = e.sync_key
            bucket = out.setdefault(key, {})
            if role in bucket:
                raise TraceError(f"duplicate semaphore {role} for {key}")
            bucket[role] = e
        for key, bucket in out.items():
            if set(bucket) != {"req", "acq", "sig"}:
                raise TraceError(
                    f"incomplete semaphore use {key}: has {sorted(bucket)}"
                )
        return out

    def sem_grant_order(self) -> dict[str, list[tuple[str, int]]]:
        """Per semaphore, use keys ordered by grant (SEM_ACQ) time."""
        uses = self.sem_uses()
        by_sem: dict[str, list[tuple[str, int]]] = {}
        for key in uses:
            by_sem.setdefault(key[0], []).append(key)
        for sem, keys in by_sem.items():
            keys.sort(key=lambda k: (uses[k]["acq"].time, uses[k]["acq"].seq))
        return by_sem

    def sem_signal_order(self) -> dict[str, list[tuple[str, int]]]:
        """Per semaphore, use keys ordered by signal (SEM_SIG) time."""
        uses = self.sem_uses()
        by_sem: dict[str, list[tuple[str, int]]] = {}
        for key in uses:
            by_sem.setdefault(key[0], []).append(key)
        for sem, keys in by_sem.items():
            keys.sort(key=lambda k: (uses[k]["sig"].time, uses[k]["sig"].seq))
        return by_sem

    def relabelled(self, **meta: Any) -> "Trace":
        """Copy of this trace with updated metadata."""
        new_meta = dict(self.meta)
        new_meta.update(meta)
        return Trace(self.events, new_meta)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Trace({len(self.events)} events, {len(self.threads)} threads, "
            f"duration={self.duration}, kind={self.meta.get('kind', '?')})"
        )
