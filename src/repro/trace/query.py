"""Composable vectorized queries over traces.

A query is a conjunction of column :class:`Predicate`\\ s (plus an
optional group-by aggregation) evaluated with numpy masks over
:class:`~repro.trace.columnar.TraceColumns` — either a whole in-memory
trace or, for chunked ``.rpt`` v3 files, one chunk at a time through
:class:`~repro.trace.stream.ChunkReader` with *predicate pushdown*:
chunks whose per-column min/max statistics cannot satisfy the
conjunction are skipped without reading their bytes (the
``query.chunks_pruned`` obs counter), and scanned chunks decode only the
columns the query touches.

Where-expression grammar (the CLI's ``--where``)::

    expr   := term (" and " term)*
    term   := column op value
    op     := == | != | < | <= | > | >=
    value  := integer | none | 'quoted string' | bare-string

``kind`` compares against event-kind names (``advance``, ``awaitE``,
...), ``sync_var``/``label`` against their string values, and
``iteration``/``sync_index`` accept ``none`` for the missing value.
Only ``==``/``!=`` apply to strings and kinds.  Ordering comparisons on
optional columns match non-``none`` rows only, while ``!= <int>``
matches ``none`` rows too (Python's ``None != 3`` semantics).

Semantics note: a v3 file written before chunk statistics carried the
``has_none`` flag (see :data:`repro.trace.binio.OPTIONAL_STAT_COLUMNS`)
has sentinel-poisoned bounds on the optional columns; pushdown detects
the missing flag and simply never prunes on those columns for such
files — results are unchanged, only the skip rate drops.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

from repro.obs import core as obs
from repro.trace import columnar as _columnar
from repro.trace.columnar import COLUMN_NAMES, NONE_SENTINEL, TraceColumns
from repro.trace.events import KIND_LIST, EventKind, kind_from_value
from repro.trace.trace import Trace, TraceError

OPS = ("==", "!=", "<", "<=", ">", ">=")

_STRING_COLUMNS = frozenset({"sync_var", "label"})
_OPTIONAL_COLUMNS = frozenset({"iteration", "sync_index"})
_EQUALITY_ONLY = _STRING_COLUMNS | {"kind"}

#: Columns a ``group_by`` may name (low-cardinality / identity columns).
GROUP_COLUMNS = ("thread", "kind", "eid", "sync_var", "label", "iteration")


class QueryError(TraceError):
    """Raised for malformed queries (bad column, op, or value)."""


@dataclass(frozen=True)
class Predicate:
    """One ``column op value`` filter term."""

    column: str
    op: str
    value: Union[int, str, None]

    def __post_init__(self):
        if self.column not in COLUMN_NAMES:
            raise QueryError(
                f"unknown query column {self.column!r}; "
                f"expected one of {', '.join(COLUMN_NAMES)}"
            )
        if self.op not in OPS:
            raise QueryError(
                f"unknown query operator {self.op!r}; "
                f"expected one of {', '.join(OPS)}"
            )
        value = self.value
        if isinstance(value, EventKind):
            object.__setattr__(self, "value", value.value)
            value = self.value
        if self.column in _EQUALITY_ONLY and self.op not in ("==", "!="):
            raise QueryError(
                f"column {self.column!r} only supports == and !="
            )
        if self.column == "kind":
            if not isinstance(value, str):
                raise QueryError(
                    f"kind compares against an event-kind name, got {value!r}"
                )
            try:
                kind_from_value(value)
            except ValueError as exc:
                raise QueryError(str(exc)) from None
        elif self.column in _STRING_COLUMNS:
            if value is not None and not isinstance(value, str):
                raise QueryError(
                    f"column {self.column!r} compares against a string "
                    f"(or none), got {value!r}"
                )
        elif self.column in _OPTIONAL_COLUMNS:
            if value is None:
                if self.op not in ("==", "!="):
                    raise QueryError(
                        f"{self.column} {self.op} none is not defined; "
                        "use == none or != none"
                    )
            elif not isinstance(value, int) or isinstance(value, bool):
                raise QueryError(
                    f"column {self.column!r} compares against an integer "
                    f"or none, got {value!r}"
                )
        elif not isinstance(value, int) or isinstance(value, bool):
            raise QueryError(
                f"column {self.column!r} compares against an integer, "
                f"got {value!r}"
            )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        value = "none" if self.value is None else self.value
        return f"{self.column} {self.op} {value}"


_TERM_RE = re.compile(r"^\s*(\w+)\s*(==|!=|<=|>=|<|>)\s*(.+?)\s*$")
_INT_RE = re.compile(r"^-?\d+$")


def parse_where(text: str) -> tuple[Predicate, ...]:
    """Parse a ``"col op value and col op value ..."`` conjunction."""
    terms = re.split(r"\s+and\s+", text.strip())
    preds = []
    for term in terms:
        if not term:
            continue
        m = _TERM_RE.match(term)
        if m is None:
            raise QueryError(
                f"cannot parse query term {term!r}; "
                "expected 'column op value'"
            )
        column, op, raw = m.group(1), m.group(2), m.group(3)
        if raw[0] in "=<>":  # e.g. "thread === 3" splitting as == / "= 3"
            raise QueryError(
                f"cannot parse query term {term!r}; "
                "expected 'column op value'"
            )
        if raw.lower() == "none":
            value: Union[int, str, None] = None
        elif _INT_RE.match(raw):
            value = int(raw)
        elif len(raw) >= 2 and raw[0] == raw[-1] and raw[0] in "'\"":
            value = raw[1:-1]
        else:
            value = raw
        # String-typed columns keep numeric-looking values as strings.
        if column in _STRING_COLUMNS and isinstance(value, int):
            value = raw
        preds.append(Predicate(column, op, value))
    return tuple(preds)


def _as_predicates(where) -> tuple[Predicate, ...]:
    if where is None:
        return ()
    if isinstance(where, str):
        return parse_where(where)
    if isinstance(where, Predicate):
        return (where,)
    out: list[Predicate] = []
    for item in where:
        if isinstance(item, str):
            out.extend(parse_where(item))
        elif isinstance(item, Predicate):
            out.append(item)
        else:
            raise QueryError(f"not a predicate: {item!r}")
    return tuple(out)


# -------------------------------------------------------- value resolution
#: Interned index that matches no row (a string absent from the table).
_NO_MATCH = -2


def _resolve_value(pred: Predicate, sync_var_table, label_table):
    """The int64 the predicate compares against for a given source."""
    if pred.column == "kind":
        from repro.trace.events import KIND_CODE

        return KIND_CODE[kind_from_value(pred.value)]
    if pred.column in _STRING_COLUMNS:
        value = pred.value
        if value is None or (pred.column == "label" and value == ""):
            return -1
        table = sync_var_table if pred.column == "sync_var" else label_table
        try:
            return list(table).index(value)
        except ValueError:
            return _NO_MATCH
    if pred.column in _OPTIONAL_COLUMNS and pred.value is None:
        return NONE_SENTINEL
    return int(pred.value)


def _mask(np, pred: Predicate, arr, resolved: int):
    """Boolean row mask of one predicate over one column array."""
    if resolved == _NO_MATCH:
        # String absent from this trace's table: == matches nothing,
        # != matches everything.
        return np.full(len(arr), pred.op == "!=", dtype=bool)
    if pred.column in _OPTIONAL_COLUMNS and pred.value is not None:
        if pred.op == "==":
            return arr == resolved
        if pred.op == "!=":
            return arr != resolved  # None rows: None != v is True
        present = arr != NONE_SENTINEL
        if pred.op == "<":
            return present & (arr < resolved)
        if pred.op == "<=":
            return present & (arr <= resolved)
        if pred.op == ">":
            return present & (arr > resolved)
        return present & (arr >= resolved)
    if pred.op == "==":
        return arr == resolved
    if pred.op == "!=":
        return arr != resolved
    if pred.op == "<":
        return arr < resolved
    if pred.op == "<=":
        return arr <= resolved
    if pred.op == ">":
        return arr > resolved
    return arr >= resolved


def _may_match(pred: Predicate, stats: Optional[dict], resolved: int) -> bool:
    """False only if the chunk's stats *prove* no row can match."""
    if stats is None:
        return True
    if resolved == _NO_MATCH:
        return pred.op == "!="
    lo, hi = stats.get("min"), stats.get("max")
    if pred.column in _OPTIONAL_COLUMNS:
        if "has_none" not in stats:
            return True  # pre-fix file: bounds are sentinel-poisoned
        has_none = bool(stats["has_none"])
        if pred.value is None:
            if pred.op == "==":
                return has_none
            return lo is not None  # != none needs a non-none row
        if pred.op == "!=":
            if has_none:
                return True
            return not (lo == hi == resolved)
        if lo is None:
            return False  # all-none chunk; ==/</... need a value
        return _interval_admits(pred.op, resolved, lo, hi)
    if lo is None or hi is None:
        return True
    if pred.op == "!=":
        return not (lo == hi == resolved)
    return _interval_admits(pred.op, resolved, int(lo), int(hi))


def _interval_admits(op: str, value: int, lo: int, hi: int) -> bool:
    if op == "==":
        return lo <= value <= hi
    if op == "<":
        return lo < value
    if op == "<=":
        return lo <= value
    if op == ">":
        return hi > value
    if op == ">=":
        return hi >= value
    return True


# ------------------------------------------------------------- aggregation
class GroupStats:
    """Per-group aggregates: count, time span, overhead sum."""

    __slots__ = ("count", "time_min", "time_max", "overhead")

    def __init__(self):
        self.count = 0
        self.time_min: Optional[int] = None
        self.time_max: Optional[int] = None
        self.overhead = 0

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "time_min": self.time_min,
            "time_max": self.time_max,
            "overhead": self.overhead,
        }


def _fold_groups(np, groups: dict, keys, time, overhead) -> None:
    """Merge one chunk's selected rows into the running group table."""
    uniq, inverse = np.unique(keys, return_inverse=True)
    counts = np.bincount(inverse, minlength=len(uniq))
    ov = np.bincount(inverse, weights=overhead, minlength=len(uniq))
    for g, key in enumerate(uniq.tolist()):
        stats = groups.get(key)
        if stats is None:
            stats = groups[key] = GroupStats()
        stats.count += int(counts[g])
        stats.overhead += int(ov[g])
        at = inverse == g
        t_lo, t_hi = int(time[at].min()), int(time[at].max())
        stats.time_min = (
            t_lo if stats.time_min is None else min(stats.time_min, t_lo)
        )
        stats.time_max = (
            t_hi if stats.time_max is None else max(stats.time_max, t_hi)
        )


def _render_group_key(column: str, key: int, sync_var_table, label_table):
    """Raw int64 group key -> user-facing value."""
    if column == "kind":
        return KIND_LIST[key].value
    if column == "sync_var":
        return None if key < 0 else sync_var_table[key]
    if column == "label":
        return "" if key < 0 else label_table[key]
    if column in _OPTIONAL_COLUMNS and key == NONE_SENTINEL:
        return None
    return key


# ------------------------------------------------------------------ result
class QueryResult:
    """Outcome of :func:`run_query`.

    ``events`` holds up to ``limit`` matching events (all of them when
    ``limit`` is None); ``truncated`` is True when an early-stop scan
    ended before the whole source was examined, in which case
    ``n_matched`` counts only the scanned portion.  ``groups`` maps
    rendered group keys to :class:`GroupStats` when ``group_by`` was
    given.  The chunk counters are meaningful for v3 file sources only.
    """

    __slots__ = (
        "n_source", "n_matched", "events", "truncated", "group_by",
        "groups", "chunks_scanned", "chunks_pruned",
    )

    def __init__(self, n_source, n_matched, events, truncated,
                 group_by, groups, chunks_scanned, chunks_pruned):
        self.n_source = n_source
        self.n_matched = n_matched
        self.events = events
        self.truncated = truncated
        self.group_by = group_by
        self.groups = groups
        self.chunks_scanned = chunks_scanned
        self.chunks_pruned = chunks_pruned


# ------------------------------------------------------------------ driver
def run_query(
    source,
    *,
    where=(),
    group_by: Optional[str] = None,
    limit: Optional[int] = None,
    stop_after_limit: bool = False,
) -> QueryResult:
    """Evaluate a query against a trace, columns, reader, or ``.rpt`` path.

    ``source`` may be a :class:`Trace`, a :class:`TraceColumns`, an open
    :class:`~repro.trace.stream.ChunkReader`, or a path (v3 files are
    streamed chunk-at-a-time with pushdown; anything else is read fully
    and queried in memory).  ``where`` is a grammar string, a
    :class:`Predicate`, or an iterable of either.  ``limit`` bounds the
    number of materialized events (None = all, 0 = none); with
    ``stop_after_limit`` the scan stops as soon as the limit is reached
    — the head-dump mode that reads only the first chunks of a file.
    """
    from repro.trace.stream import ChunkReader

    preds = _as_predicates(where)
    if group_by is not None and group_by not in GROUP_COLUMNS:
        raise QueryError(
            f"cannot group by {group_by!r}; "
            f"expected one of {', '.join(GROUP_COLUMNS)}"
        )
    if isinstance(source, (str, Path)):
        if _is_v3_file(source) and _columnar.HAVE_NUMPY:
            with ChunkReader(source) as reader:
                return run_query(
                    reader, where=preds, group_by=group_by,
                    limit=limit, stop_after_limit=stop_after_limit,
                )
        from repro.trace.io import read_trace

        source = read_trace(source)
    if isinstance(source, Trace):
        source = source.columns
    _columnar._require_numpy()
    np = _columnar.np

    if isinstance(source, TraceColumns):
        chunk_iter = [(None, source)]
        sv_table, lb_table = source.sync_var_table, source.label_table
        n_source = len(source)
        chunked = False
    elif isinstance(source, ChunkReader):
        chunk_iter = None  # built below; needs pushdown
        sv_table, lb_table = source.sync_var_table, source.label_table
        n_source = source.n_events
        chunked = True
    else:
        raise QueryError(f"cannot query {type(source).__name__} objects")

    resolved = {
        pred: _resolve_value(pred, sv_table, lb_table) for pred in preds
    }
    mask_columns = sorted({pred.column for pred in preds})
    group_columns = sorted(
        {group_by, "time", "overhead"} - {None}
    ) if group_by else []

    groups: Optional[dict] = {} if group_by else None
    events: list = []
    n_matched = 0
    truncated = False
    chunks_scanned = 0
    chunks_pruned = 0
    want_events = limit is None or limit > 0

    with obs.span(
        "trace.query",
        backend="streaming-file" if chunked else "columnar",
        n_events=n_source,
    ):
        if not chunked:
            for _info, cols in chunk_iter:
                n_matched, truncated = _scan_chunk(
                    np, cols, preds, resolved, group_by, groups,
                    events, limit, stop_after_limit, want_events,
                    n_matched,
                )
        else:
            reader = source
            for i, info in enumerate(reader.chunk_index):
                if truncated:
                    break
                stats = info.get("cols", {})
                if any(
                    not _may_match(pred, stats.get(pred.column), resolved[pred])
                    for pred in preds
                ):
                    chunks_pruned += 1
                    obs.count("query.chunks_pruned")
                    continue
                chunks_scanned += 1
                obs.count("query.chunks_scanned")
                blob = reader.read_blob(i)
                need = set(mask_columns) | set(group_columns)
                arrays = _binio_decode(
                    blob, reader.compressor,
                    sorted(need) if (need and not want_events) else None,
                )
                cols = _chunk_columns(np, arrays, sv_table, lb_table,
                                      int(info["rows"]))
                n_matched, truncated = _scan_chunk(
                    np, cols, preds, resolved, group_by, groups,
                    events, limit, stop_after_limit, want_events,
                    n_matched,
                )

    rendered = None
    if groups is not None:
        rendered = {
            _render_group_key(group_by, key, sv_table, lb_table): stats
            for key, stats in sorted(groups.items())
        }
    return QueryResult(
        n_source, n_matched, events, truncated,
        group_by, rendered, chunks_scanned, chunks_pruned,
    )


def _binio_decode(blob, compressor, columns):
    from repro.trace import binio as _binio

    return _binio.decode_chunk(blob, compressor, columns=columns)


class _ProjectedColumns:
    """Duck-typed column access over a partial (projected) decode."""

    def __init__(self, arrays, sv_table, lb_table, rows):
        self._arrays = arrays
        self.sync_var_table = sv_table
        self.label_table = lb_table
        self._rows = rows

    def __len__(self):
        return self._rows

    def __getattr__(self, name):
        try:
            return self._arrays[name]
        except KeyError:
            raise AttributeError(name) from None


def _chunk_columns(np, arrays, sv_table, lb_table, rows):
    arrays = dict(arrays)
    arrays.pop("rows", None)
    if len(arrays) == len(COLUMN_NAMES):
        return TraceColumns(
            sync_var_table=sv_table, label_table=lb_table, **arrays
        )
    return _ProjectedColumns(arrays, sv_table, lb_table, rows)


def _scan_chunk(
    np, cols, preds, resolved, group_by, groups,
    events, limit, stop_after_limit, want_events, n_matched,
):
    """Evaluate the conjunction over one chunk; fold groups and events.

    Returns the updated ``(n_matched, truncated)``.
    """
    n = len(cols)
    if n == 0:
        return n_matched, False
    mask = None
    for pred in preds:
        part = _mask(np, pred, getattr(cols, pred.column), resolved[pred])
        mask = part if mask is None else (mask & part)
        if not mask.any():
            return n_matched, False
    at = np.arange(n) if mask is None else np.flatnonzero(mask)
    if len(at) == 0:
        return n_matched, False
    n_matched += len(at)
    if groups is not None:
        _fold_groups(
            np, groups,
            getattr(cols, group_by)[at],
            cols.time[at],
            cols.overhead[at],
        )
    truncated = False
    if want_events:
        room = None if limit is None else limit - len(events)
        take = at if room is None else at[:room]
        if len(take) and isinstance(cols, TraceColumns):
            events.extend(cols.take(take).to_events())
        elif len(take):  # pragma: no cover - defensive; full decode above
            raise QueryError(
                "internal error: event materialization over a projection"
            )
        if (
            stop_after_limit
            and limit is not None
            and len(events) >= limit
        ):
            truncated = True
    return n_matched, truncated


def _is_v3_file(path: Union[str, Path]) -> bool:
    from repro.trace import binio as _binio

    try:
        with open(path, "rb") as fh:
            return fh.read(len(_binio.MAGIC_V3)) == _binio.MAGIC_V3
    except OSError:
        return False
